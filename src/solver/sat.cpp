#include "solver/sat.hpp"

#include <algorithm>
#include <cmath>

namespace gp::solver {

u32 Sat::new_var() {
  const u32 v = static_cast<u32>(assign_.size());
  assign_.push_back(2);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  polarity_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

bool Sat::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  GP_CHECK(trail_lim_.empty(), "add_clause only at decision level 0");

  // Deduplicate; drop clauses containing both l and ~l (tautology) or
  // literals already false at level 0.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  std::vector<Lit> out;
  for (size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1].code == (lits[i].code ^ 1))
      return true;  // tautology
    if (i > 0 && lits[i] == lits[i - 1]) continue;
    const i8 v = value(lits[i]);
    if (v == 1) return true;  // already satisfied at level 0
    if (v == 0) continue;     // already false: drop literal
    out.push_back(lits[i]);
  }

  if (out.empty()) {
    unsat_ = true;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) {
      unsat_ = true;
      return false;
    }
    return true;
  }

  const u32 idx = static_cast<u32>(clauses_.size());
  watches_[(~out[0]).code].push_back({idx, out[1]});
  watches_[(~out[1]).code].push_back({idx, out[0]});
  clauses_.push_back({std::move(out), false});
  return true;
}

void Sat::enqueue(Lit l, u32 reason) {
  GP_CHECK(value(l) == 2, "enqueue on assigned literal");
  assign_[l.var()] = static_cast<i8>(!l.sign());
  level_[l.var()] = static_cast<u32>(trail_lim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

u32 Sat::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p became true; scan watches of p
    auto& ws = watches_[p.code];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const Watch w = ws[i];
      if (value(w.blocker) == 1) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Ensure the false literal (~p) is at position 1.
      if (c.lits[0] == ~p) std::swap(c.lits[0], c.lits[1]);
      if (value(c.lits[0]) == 1) {
        ws[keep++] = {w.clause, c.lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code].push_back({w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      ws[keep++] = w;
      if (value(c.lits[0]) == 0) {
        // Conflict: copy the remaining watches and report.
        for (size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(c.lits[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Sat::bump(u32 v) {
  activity_[v] += activity_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
}

void Sat::decay() { activity_inc_ *= 1.0 / 0.95; }

void Sat::analyze(u32 confl, std::vector<Lit>& learnt, u32& backtrack_level) {
  learnt.clear();
  learnt.push_back({0});  // placeholder for the asserting literal
  int counter = 0;
  Lit p{0};
  bool first = true;
  size_t index = trail_.size();
  const u32 cur_level = static_cast<u32>(trail_lim_.size());

  for (;;) {
    const Clause& c = clauses_[confl];
    for (size_t j = first ? 0 : 1; j < c.lits.size(); ++j) {
      const Lit q = c.lits[j];
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        seen_[q.var()] = 1;
        bump(q.var());
        if (level_[q.var()] >= cur_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk the trail backwards to the next marked literal.
    do {
      --index;
      p = trail_[index];
    } while (!seen_[p.var()]);
    seen_[p.var()] = 0;
    --counter;
    first = false;
    if (counter == 0) break;
    confl = reason_[p.var()];
    GP_CHECK(confl != kNoReason, "analyze hit a decision without reason");
  }
  learnt[0] = ~p;

  // Backtrack level: highest level among the other literals.
  backtrack_level = 0;
  size_t max_i = 1;
  for (size_t i = 1; i < learnt.size(); ++i) {
    if (level_[learnt[i].var()] > backtrack_level) {
      backtrack_level = level_[learnt[i].var()];
      max_i = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_i]);
  for (const Lit l : learnt) seen_[l.var()] = 0;
}

void Sat::backtrack(u32 target) {
  if (trail_lim_.size() <= target) return;
  const size_t bound = trail_lim_[target];
  for (size_t i = trail_.size(); i-- > bound;) {
    const u32 v = trail_[i].var();
    polarity_[v] = static_cast<u8>(assign_[v]);
    assign_[v] = 2;
    reason_[v] = kNoReason;
  }
  trail_.resize(bound);
  trail_lim_.resize(target);
  qhead_ = bound;
}

Lit Sat::decide() {
  u32 best = kNoReason;
  double best_act = -1.0;
  for (u32 v = 0; v < assign_.size(); ++v) {
    if (assign_[v] == 2 && activity_[v] > best_act) {
      best_act = activity_[v];
      best = v;
    }
  }
  if (best == kNoReason) return {kNoReason};
  return polarity_[best] ? Lit::pos(best) : Lit::neg(best);
}

SatResult Sat::solve(i64 conflict_budget, const Governor* governor) {
  if (unsat_) return SatResult::Unsat;
  u64 restart_limit = 128;
  u64 conflicts_since_restart = 0;
  // Deadline/cancel watchdog stride: one steady_clock read per 128
  // propagate+decide rounds keeps the poll cost invisible next to unit
  // propagation while bounding overshoot to a few milliseconds.
  constexpr u64 kGovernorStride = 128;
  u64 since_poll = 0;

  for (;;) {
    if (governor && ++since_poll >= kGovernorStride) {
      since_poll = 0;
      if (governor->should_stop()) return SatResult::Unknown;
    }
    const u32 confl = propagate();
    if (confl != kNoReason) {
      ++conflicts_;
      ++conflicts_since_restart;
      if (conflict_budget >= 0 &&
          conflicts_ > static_cast<u64>(conflict_budget))
        return SatResult::Unknown;
      if (trail_lim_.empty()) return SatResult::Unsat;

      std::vector<Lit> learnt;
      u32 bt_level = 0;
      analyze(confl, learnt, bt_level);
      backtrack(bt_level);

      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const u32 idx = static_cast<u32>(clauses_.size());
        watches_[(~learnt[0]).code].push_back({idx, learnt[1]});
        watches_[(~learnt[1]).code].push_back({idx, learnt[0]});
        const Lit assert_lit = learnt[0];
        clauses_.push_back({std::move(learnt), true});
        enqueue(assert_lit, idx);
      }
      decay();
    } else {
      if (conflicts_since_restart >= restart_limit) {
        conflicts_since_restart = 0;
        restart_limit = restart_limit + (restart_limit >> 1);
        backtrack(0);
      }
      const Lit next = decide();
      if (next.code == kNoReason) return SatResult::Sat;
      trail_lim_.push_back(static_cast<u32>(trail_.size()));
      enqueue(next, kNoReason);
    }
  }
}

}  // namespace gp::solver
