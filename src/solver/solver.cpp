#include "solver/solver.hpp"

#include <algorithm>

#include "support/fault.hpp"
#include "support/metrics.hpp"

namespace gp::solver {
namespace {

u64 key_of(const std::vector<ExprRef>& constraints) {
  std::vector<ExprRef> sorted(constraints);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  u64 h = 0x243f6a8885a308d3ULL;
  for (const ExprRef e : sorted)
    h ^= e + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Process-wide rollup alongside the per-Solver counters: one relaxed add
/// per outcome, visible in campaign summaries and --report.
void count_outcome(SatResult r) {
  static metrics::Counter& sat = metrics::registry().counter("solver.sat");
  static metrics::Counter& unsat =
      metrics::registry().counter("solver.unsat");
  static metrics::Counter& unknown =
      metrics::registry().counter("solver.unknown");
  switch (r) {
    case SatResult::Sat: sat.add(); break;
    case SatResult::Unsat: unsat.add(); break;
    case SatResult::Unknown: unknown.add(); break;
  }
}

}  // namespace

SatResult Solver::check_impl(const std::vector<ExprRef>& constraints,
                             std::optional<Model>* model) {
  ++queries_;
  {
    static metrics::Counter& checks =
        metrics::registry().counter("solver.checks");
    checks.add();
  }
  last_unknown_ = false;

  // Constant-only fast path (free: no budget consumed, always conclusive).
  bool all_const_true = true;
  for (const ExprRef c : constraints) {
    GP_CHECK(ctx_.width(c) == 1, "constraint must be width 1");
    if (ctx_.is_const(c, 0)) {
      memo_[key_of(constraints)] = Memo::Unsat;
      count_outcome(SatResult::Unsat);
      return SatResult::Unsat;
    }
    if (!ctx_.is_const(c)) all_const_true = false;
  }
  if (all_const_true) {
    if (model) *model = Model{};
    count_outcome(SatResult::Sat);
    return SatResult::Sat;
  }

  auto unknown = [&] {
    last_unknown_ = true;
    ++unknowns_;
    count_outcome(SatResult::Unknown);
    return SatResult::Unknown;
  };
  // Governed exhaustion and injected solver timeouts both surface as
  // UNKNOWN before any bit-blasting happens; UNKNOWN is never memoized, so
  // a later run with budget left can still answer.
  if (governor_) {
    if (governor_->should_stop()) return unknown();
    if (!governor_->solver_checks().try_consume()) return unknown();
  }
  if (fault::enabled() && fault::should_fire(fault::Point::Solver))
    return unknown();

  BitBlaster bb(ctx_);
  std::vector<ExprRef> vars;
  for (const ExprRef c : constraints) {
    bb.assert_true(c);
    for (const ExprRef v : ctx_.variables(c)) vars.push_back(v);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  // Blast all variables before solving so model extraction never has to add
  // clauses mid-model.
  for (const ExprRef v : vars) (void)bb.model_value(v);

  const SatResult r = bb.solve(conflict_budget_, governor_);
  if (r == SatResult::Unknown) return unknown();
  count_outcome(r);
  memo_[key_of(constraints)] = r == SatResult::Sat ? Memo::Sat : Memo::Unsat;
  if (r == SatResult::Sat && model) {
    Model m;
    for (const ExprRef v : vars) m[v] = bb.model_value(v);
    *model = std::move(m);
  }
  return r;
}

std::optional<Model> Solver::check_sat(
    const std::vector<ExprRef>& constraints) {
  std::optional<Model> model;
  check_impl(constraints, &model);
  return model;
}

SatResult Solver::check(const std::vector<ExprRef>& constraints) {
  const u64 key = key_of(constraints);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++cache_hits_;
    static metrics::Counter& hits =
        metrics::registry().counter("solver.cache_hits");
    hits.add();
    last_unknown_ = false;
    return it->second == Memo::Sat ? SatResult::Sat : SatResult::Unsat;
  }
  return check_impl(constraints, nullptr);
}

bool Solver::is_sat(const std::vector<ExprRef>& constraints) {
  return check(constraints) == SatResult::Sat;
}

bool Solver::prove_valid(ExprRef e) {
  if (ctx_.is_const(e)) return ctx_.const_val(e) == 1;
  // Proven valid only when the negation is conclusively UNSAT; an UNKNOWN
  // refutation attempt proves nothing.
  return check({ctx_.bnot(e)}) == SatResult::Unsat;
}

bool Solver::prove_equal(ExprRef a, ExprRef b) {
  if (a == b) return true;
  if (ctx_.width(a) != ctx_.width(b)) return false;
  if (ctx_.is_const(a) && ctx_.is_const(b))
    return ctx_.const_val(a) == ctx_.const_val(b);
  return check({ctx_.ne(a, b)}) == SatResult::Unsat;
}

bool Solver::prove_implies(ExprRef antecedent, ExprRef consequent) {
  if (consequent == ctx_.t()) return true;
  if (antecedent == ctx_.f()) return true;
  if (antecedent == consequent) return true;
  return check({antecedent, ctx_.bnot(consequent)}) == SatResult::Unsat;
}

}  // namespace gp::solver
