// Tseitin bit-blaster: lowers bit-vector expressions onto the CDCL SAT core.
// Adders are ripple-carry, multipliers shift-and-add, variable shifts barrel
// shifters; gate outputs are cached so shared DAG nodes encode once.
#pragma once

#include <unordered_map>
#include <vector>

#include "solver/expr.hpp"
#include "solver/sat.hpp"

namespace gp::solver {

class BitBlaster {
 public:
  explicit BitBlaster(Context& ctx) : ctx_(ctx) {
    // Reserve a literal that is constant true.
    const u32 v = sat_.new_var();
    true_lit_ = Lit::pos(v);
    sat_.add_clause({true_lit_});
  }

  /// Assert that width-1 expression e is true.
  void assert_true(ExprRef e);

  SatResult solve(i64 conflict_budget = -1,
                  const Governor* governor = nullptr) {
    return sat_.solve(conflict_budget, governor);
  }

  /// After Sat: concrete value of any expression under the model.
  u64 model_value(ExprRef e);

  size_t num_clauses() const { return sat_.num_clauses(); }
  u64 num_conflicts() const { return sat_.num_conflicts(); }

 private:
  using Bits = std::vector<Lit>;

  Lit false_lit() const { return ~true_lit_; }
  Lit lit_const(bool b) const { return b ? true_lit_ : false_lit(); }
  bool is_const_lit(Lit l, bool* out) const;

  Lit mk_and(Lit a, Lit b);
  Lit mk_or(Lit a, Lit b);
  Lit mk_xor(Lit a, Lit b);
  Lit mk_mux(Lit sel, Lit t, Lit f);  // sel ? t : f
  Lit mk_big_and(const std::vector<Lit>& ls);

  Bits blast(ExprRef e);
  Bits add_bits(const Bits& a, const Bits& b, Lit carry_in);
  Lit ult_bits(const Bits& a, const Bits& b);

  Context& ctx_;
  Sat sat_;
  Lit true_lit_{0};
  std::unordered_map<ExprRef, Bits> cache_;
  // Gate cache: (op, a.code, b.code) -> output literal.
  std::unordered_map<u64, Lit> gates_;
};

}  // namespace gp::solver
