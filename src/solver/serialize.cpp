#include "solver/serialize.hpp"

#include <algorithm>

namespace gp::solver {

void ExprEncoder::add(ExprRef e) {
  if (e == kNoExpr || ids_.count(e)) return;
  ids_.emplace(e, kNoId);  // placeholder; real ids assigned in write_nodes
  const Node& n = ctx_.node(e);
  if (n.a != kNoExpr) add(n.a);
  if (n.b != kNoExpr) add(n.b);
  if (n.c != kNoExpr) add(n.c);
  order_.push_back(e);
}

void ExprEncoder::write_nodes(serial::Writer& w) {
  // Ref order is creation order, and operands always intern before their
  // users, so sorting by ref yields a topological order with stable ids
  // regardless of the order roots were add()ed in.
  std::sort(order_.begin(), order_.end());
  for (u32 i = 0; i < order_.size(); ++i) ids_[order_[i]] = i;

  w.put_u32(static_cast<u32>(order_.size()));
  for (const ExprRef e : order_) {
    const Node& n = ctx_.node(e);
    w.put_u8(static_cast<u8>(n.op));
    w.put_u8(n.width);
    w.put_u8(n.aux);
    if (n.op == Op::Const) {
      w.put_u64(n.cval);
    } else if (n.op == Op::Var) {
      w.put_str(ctx_.var_name(e));
    } else {
      auto operand = [&](ExprRef x) {
        w.put_u32(x == kNoExpr ? kNoId : ids_.at(x));
      };
      operand(n.a);
      operand(n.b);
      operand(n.c);
    }
  }
}

u32 ExprEncoder::id(ExprRef e) const {
  if (e == kNoExpr) return kNoId;
  return ids_.at(e);
}

bool ExprDecoder::read_nodes(serial::Reader& r) {
  const u32 count = r.get_u32();
  // Each serialized node is at least 3 bytes; a count implying more bytes
  // than remain is corrupt (guards the reserve below too).
  if (!r.ok() || static_cast<u64>(count) * 3 > r.remaining()) {
    r.set_failed();
    return false;
  }
  refs_.clear();
  refs_.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const Op op = static_cast<Op>(r.get_u8());
    const u8 width = r.get_u8();
    const u8 aux = r.get_u8();
    if (!r.ok() || width < 1 || width > 64) {
      r.set_failed();
      return false;
    }
    // Operand ids must point strictly backward in the table (topological
    // order); anything else is corruption.
    auto operand = [&](bool required) -> ExprRef {
      const u32 id = r.get_u32();
      if (id == ExprEncoder::kNoId) {
        if (required) r.set_failed();
        return kNoExpr;
      }
      if (id >= i) {
        r.set_failed();
        return kNoExpr;
      }
      return refs_[id];
    };
    ExprRef out = kNoExpr;
    switch (op) {
      case Op::Const: out = dst_.constant(r.get_u64(), width); break;
      case Op::Var: {
        const std::string name = r.get_str();
        if (!r.ok() || name.empty()) {
          r.set_failed();
          return false;
        }
        out = dst_.var(name, width);
        break;
      }
      case Op::Add: case Op::Mul: case Op::And: case Op::Or: case Op::Xor:
      case Op::Shl: case Op::LShr: case Op::AShr:
      case Op::Eq: case Op::Ult: case Op::Slt:
      case Op::Concat: {
        const ExprRef a = operand(true);
        const ExprRef b = operand(true);
        operand(false);  // unused c slot
        if (!r.ok()) return false;
        switch (op) {
          case Op::Add: out = dst_.add(a, b); break;
          case Op::Mul: out = dst_.mul(a, b); break;
          case Op::And: out = dst_.band(a, b); break;
          case Op::Or: out = dst_.bor(a, b); break;
          case Op::Xor: out = dst_.bxor(a, b); break;
          case Op::Shl: out = dst_.shl(a, b); break;
          case Op::LShr: out = dst_.lshr(a, b); break;
          case Op::AShr: out = dst_.ashr(a, b); break;
          case Op::Eq: out = dst_.eq(a, b); break;
          case Op::Ult: out = dst_.ult(a, b); break;
          case Op::Slt: out = dst_.slt(a, b); break;
          case Op::Concat: out = dst_.concat(a, b); break;
          default: break;
        }
        break;
      }
      case Op::Not: case Op::Neg: case Op::ZExt: case Op::SExt:
      case Op::Extract: {
        const ExprRef a = operand(true);
        operand(false);
        operand(false);
        if (!r.ok()) return false;
        switch (op) {
          case Op::Not: out = dst_.bnot(a); break;
          case Op::Neg: out = dst_.neg(a); break;
          case Op::ZExt: out = dst_.zext(a, width); break;
          case Op::SExt: out = dst_.sext(a, width); break;
          case Op::Extract: out = dst_.extract(a, aux, width); break;
          default: break;
        }
        break;
      }
      case Op::Ite: {
        const ExprRef a = operand(true);
        const ExprRef b = operand(true);
        const ExprRef c = operand(true);
        if (!r.ok()) return false;
        out = dst_.ite(a, b, c);
        break;
      }
      default:
        r.set_failed();  // unknown op byte: corrupt
        return false;
    }
    refs_.push_back(out);
  }
  return r.ok();
}

ExprRef ExprDecoder::ref(u32 id, serial::Reader& r) const {
  if (id == ExprEncoder::kNoId) return kNoExpr;
  if (id >= refs_.size()) {
    r.set_failed();
    return kNoExpr;
  }
  return refs_[id];
}

}  // namespace gp::solver
