// Symbolic executor over the micro-IR. Shares the lifter with the concrete
// emulator, so the two stay semantically aligned by construction (and by the
// cross-validation property tests in tests/test_sym.cpp).
#pragma once

#include "image/image.hpp"
#include "solver/expr.hpp"
#include "support/governor.hpp"
#include "sym/state.hpp"

namespace gp::sym {

/// Where control goes after one instruction, with symbolic components.
struct Flow {
  ir::JumpKind kind = ir::JumpKind::Fall;
  u64 target = 0;                            // Direct / CondDirect
  u64 fallthrough = 0;
  solver::ExprRef target_expr = solver::kNoExpr;  // Indirect
  solver::ExprRef cond = solver::kNoExpr;         // CondDirect (width 1)
  bool is_ret = false;
  bool is_call = false;
};

class Executor {
 public:
  /// `img` (optional) lets constant-address loads resolve to the image's
  /// actual bytes — required for jump tables and initialized globals; loads
  /// from constant addresses outside the image read as zero, matching the
  /// emulator's sparse memory.
  explicit Executor(solver::Context& ctx, const image::Image* img = nullptr)
      : ctx_(ctx), img_(img) {}

  /// A fresh state whose registers/flags are the shared initial variables.
  State initial_state();

  /// Execute one lifted instruction, mutating `st`. Returns the symbolic
  /// control-flow outcome. Under a governor, each step consumes one
  /// symbolic-execution budget unit; exhaustion throws ResourceExhausted
  /// for the calling stage (extractor offset loop, concretize) to convert
  /// into a degraded result.
  Flow step(State& st, const ir::Lifted& l);

  /// Attach a resource governor (nullptr detaches); it must outlive the
  /// executor. The context's expr-node budget is governed separately via
  /// Context::set_governor.
  void set_governor(Governor* g) { governor_ = g; }

  /// Enter a deterministic fresh-variable scope: until the next call, fresh
  /// memory variables are named `ind@<tag>.<n>_<w>` / `mem@<tag>.<n>_<w>`
  /// instead of drawing from the process-global counter. The extractor tags
  /// each scan offset with its address, which makes fresh names a function
  /// of (offset, load order within the offset) only — independent of how
  /// offsets are interleaved across threads, so parallel and sequential
  /// extraction mint identical variables.
  void begin_origin(u64 tag) {
    origin_tag_ = tag;
    origin_count_ = 0;
    use_origin_ = true;
  }

  solver::Context& ctx() { return ctx_; }

 private:
  solver::ExprRef canonical_addr(solver::ExprRef addr);
  solver::ExprRef load(State& st, solver::ExprRef addr, u8 width);
  void store(State& st, solver::ExprRef addr, solver::ExprRef value,
             u8 width);
  std::string fresh_name(const char* prefix, u8 width);

  solver::Context& ctx_;
  const image::Image* img_;
  Governor* governor_ = nullptr;
  u64 origin_tag_ = 0;
  u64 origin_count_ = 0;
  bool use_origin_ = false;
};

/// Normalize an address to (symbolic base, concrete byte offset).
/// Constants normalize to (kNoExpr, value).
struct BaseOffset {
  solver::ExprRef base = solver::kNoExpr;
  i64 offset = 0;
};
std::optional<BaseOffset> split_base_offset(solver::Context& ctx,
                                            solver::ExprRef addr);

}  // namespace gp::sym
