// Symbolic executor over the micro-IR. Shares the lifter with the concrete
// emulator, so the two stay semantically aligned by construction (and by the
// cross-validation property tests in tests/test_sym.cpp).
#pragma once

#include "image/image.hpp"
#include "solver/expr.hpp"
#include "sym/state.hpp"

namespace gp::sym {

/// Where control goes after one instruction, with symbolic components.
struct Flow {
  ir::JumpKind kind = ir::JumpKind::Fall;
  u64 target = 0;                            // Direct / CondDirect
  u64 fallthrough = 0;
  solver::ExprRef target_expr = solver::kNoExpr;  // Indirect
  solver::ExprRef cond = solver::kNoExpr;         // CondDirect (width 1)
  bool is_ret = false;
  bool is_call = false;
};

class Executor {
 public:
  /// `img` (optional) lets constant-address loads resolve to the image's
  /// actual bytes — required for jump tables and initialized globals; loads
  /// from constant addresses outside the image read as zero, matching the
  /// emulator's sparse memory.
  explicit Executor(solver::Context& ctx, const image::Image* img = nullptr)
      : ctx_(ctx), img_(img) {}

  /// A fresh state whose registers/flags are the shared initial variables.
  State initial_state();

  /// Execute one lifted instruction, mutating `st`. Returns the symbolic
  /// control-flow outcome.
  Flow step(State& st, const ir::Lifted& l);

  solver::Context& ctx() { return ctx_; }

 private:
  solver::ExprRef canonical_addr(solver::ExprRef addr);
  solver::ExprRef load(State& st, solver::ExprRef addr, u8 width);
  void store(State& st, solver::ExprRef addr, solver::ExprRef value,
             u8 width);

  solver::Context& ctx_;
  const image::Image* img_;
  u64 fresh_counter_ = 0;
};

/// Normalize an address to (symbolic base, concrete byte offset).
/// Constants normalize to (kNoExpr, value).
struct BaseOffset {
  solver::ExprRef base = solver::kNoExpr;
  i64 offset = 0;
};
std::optional<BaseOffset> split_base_offset(solver::Context& ctx,
                                            solver::ExprRef addr);

}  // namespace gp::sym
