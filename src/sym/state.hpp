// Symbolic machine state: registers, flags, a path condition, and a
// write-history memory model.
//
// Memory policy (the paper's Sec. IV-B):
//  - addresses are normalized to (base expr + concrete offset);
//  - reads that hit a previous write with the same (base, offset, width)
//    return the stored value;
//  - reads from the initial stack (base == initial RSP) materialize
//    attacker-controlled payload variables `stk_<offset>`;
//  - any other unresolved read materializes a fresh unconstrained variable
//    (the paper: "the variable is left unconstrained so that it is free to
//    take on whatever value is necessary for the rest of the plan");
//  - distinct symbolic bases are assumed not to alias (standard in ROP
//    tooling; recorded per-state in `assumed_no_alias`).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "solver/expr.hpp"
#include "x86/inst.hpp"

namespace gp::sym {

struct MemWrite {
  solver::ExprRef addr;
  solver::ExprRef value;  // width bits
  u8 width;               // bits
};

/// A load through an attacker-derivable pointer (the paper's POINTER-typed
/// constraints): the address is a function of payload slots and/or initial
/// registers, so a chain that controls those can point it anywhere — payload
/// concretization redirects it into the payload and places the value there.
struct IndirectRead {
  solver::ExprRef addr;  // full address expression
  solver::ExprRef var;   // the fresh variable returned for the loaded value
  u8 width;              // bits
};

struct State {
  std::array<solver::ExprRef, x86::kNumRegs> regs{};
  std::array<solver::ExprRef, ir::kNumFlags> flags{};
  std::vector<MemWrite> writes;
  std::vector<IndirectRead> ind_reads;
  std::vector<solver::ExprRef> constraints;  // path condition conjuncts
  /// Set when a load could not be proven disjoint from a prior write and was
  /// resolved under the no-alias assumption.
  bool assumed_no_alias = false;
  /// Payload (initial-stack) offsets this execution read, in bytes relative
  /// to the initial RSP. Drives payload layout.
  std::vector<i64> stack_reads;
};

/// Names of the initial-state variables shared by every gadget analysis, so
/// conditions from different gadgets speak the same vocabulary.
std::string initial_reg_var(x86::Reg r);
std::string initial_flag_var(ir::Flag f);
std::string stack_var(i64 offset);
/// Parse a `stk_<off>` name back to its offset.
std::optional<i64> parse_stack_var(const std::string& name);

}  // namespace gp::sym
