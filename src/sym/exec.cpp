#include "sym/exec.hpp"

#include <atomic>

#include "support/metrics.hpp"
#include "support/str.hpp"

namespace gp::sym {

using solver::ExprRef;
using solver::kNoExpr;
using solver::Op;

std::string initial_reg_var(x86::Reg r) {
  return std::string(x86::reg_name(r)) + "0";
}
std::string initial_flag_var(ir::Flag f) {
  return std::string(ir::flag_name(f)) + "0";
}
std::string stack_var(i64 offset) {
  return offset >= 0 ? "stk_" + std::to_string(offset)
                     : "stk_m" + std::to_string(-offset);
}
std::optional<i64> parse_stack_var(const std::string& name) {
  if (starts_with(name, "stk_m")) return -std::stoll(name.substr(5));
  if (starts_with(name, "stk_")) return std::stoll(name.substr(4));
  return std::nullopt;
}

std::optional<BaseOffset> split_base_offset(solver::Context& ctx,
                                            ExprRef addr) {
  const auto& n = ctx.node(addr);
  if (n.op == Op::Const)
    return BaseOffset{kNoExpr, static_cast<i64>(n.cval)};
  if (n.op == Op::Add) {
    // Smart constructors put the constant on the right.
    if (ctx.node(n.b).op == Op::Const)
      return BaseOffset{n.a, static_cast<i64>(ctx.node(n.b).cval)};
    return BaseOffset{addr, 0};
  }
  return BaseOffset{addr, 0};
}

State Executor::initial_state() {
  State st;
  for (int i = 0; i < x86::kNumRegs; ++i)
    st.regs[i] = ctx_.var(initial_reg_var(static_cast<x86::Reg>(i)), 64);
  for (int i = 0; i < ir::kNumFlags; ++i)
    st.flags[i] = ctx_.var(initial_flag_var(static_cast<ir::Flag>(i)), 1);
  return st;
}

/// In-universe canonicalization: the simulated stack lives below 2^32
/// (image::kStackTop = 0x7ffff000), so a 32-bit-truncated-then-zero-extended
/// stack address equals the original. Undoing the truncation keeps rsp-based
/// writes and reads comparable in the (base, offset) memory model.
ExprRef Executor::canonical_addr(ExprRef addr) {
  const auto& n = ctx_.node(addr);
  if (n.op != Op::ZExt || n.width != 64) return addr;
  const auto& inner = ctx_.node(n.a);
  if (inner.op != Op::Extract || inner.aux != 0 || inner.width != 32)
    return addr;
  const ExprRef full = inner.a;
  const auto bo = split_base_offset(ctx_, full);
  const ExprRef rsp0 = ctx_.var(initial_reg_var(x86::Reg::RSP), 64);
  if (bo && bo->base == rsp0) return full;
  return addr;
}

ExprRef Executor::load(State& st, ExprRef addr, u8 width) {
  addr = canonical_addr(addr);
  const auto ref = split_base_offset(ctx_, addr);

  // Scan the write history newest-to-oldest.
  for (auto it = st.writes.rbegin(); it != st.writes.rend(); ++it) {
    const auto w = split_base_offset(ctx_, it->addr);
    if (ref && w && ref->base == w->base) {
      if (ref->offset == w->offset && width == it->width) return it->value;
      const i64 a0 = ref->offset, a1 = ref->offset + width / 8;
      const i64 b0 = w->offset, b1 = w->offset + it->width / 8;
      // Disjoint ranges: keep scanning.
      if (a1 <= b0 || b1 <= a0) continue;
      // Narrow read fully inside a wider write: slice the stored value.
      if (b0 <= a0 && a1 <= b1) {
        const u8 bit_off = static_cast<u8>((a0 - b0) * 8);
        return ctx_.extract(it->value, bit_off, width);
      }
      // Other partial overlaps: the exact-match model gives up precision
      // here (fresh variable below).
      st.assumed_no_alias = true;
      break;
    }
    // Different symbolic bases: assumed disjoint.
    st.assumed_no_alias = true;
  }

  // Attacker-controlled stack read?
  const ExprRef rsp0 = ctx_.var(initial_reg_var(x86::Reg::RSP), 64);
  if (ref && ref->base == rsp0) {
    if (width == 64) {
      st.stack_reads.push_back(ref->offset);
      return ctx_.var(stack_var(ref->offset), 64);
    }
    // Narrow reads slice the aligned 8-byte payload slot they fall in, when
    // they don't straddle a slot boundary (straddling reads fall through to
    // an unconstrained fresh variable).
    const i64 slot = ref->offset & ~i64{7};
    const unsigned bit_off = static_cast<unsigned>(ref->offset - slot) * 8;
    if (bit_off + width <= 64) {
      st.stack_reads.push_back(slot);
      return ctx_.extract(ctx_.var(stack_var(slot), 64),
                          static_cast<u8>(bit_off), width);
    }
  }

  // Constant addresses read the image itself (jump tables, initialized
  // globals); outside the image they read zero, matching the emulator's
  // sparse memory. (Must come after the write-history scan above.)
  if (ref && ref->base == solver::kNoExpr && img_) {
    const u64 a = static_cast<u64>(ref->offset);
    u64 value = 0;
    for (unsigned i = 0; i < width / 8u; ++i) {
      const u64 byte_addr = a + i;
      u8 byte = 0;
      if (img_->in_code(byte_addr)) {
        byte = img_->code_at(byte_addr)[0];
      } else if (byte_addr >= img_->data_base() &&
                 byte_addr < img_->data_base() + img_->data().size()) {
        byte = img_->data()[byte_addr - img_->data_base()];
      }
      value |= static_cast<u64>(byte) << (8 * i);
    }
    return ctx_.constant(value, width);
  }

  // Attacker-derivable pointer? If every variable in the address is a
  // payload slot, an initial GP register, or a previously derived indirect
  // value, a chain can steer this load into the payload (paper Sec. IV-B's
  // POINTER-typed constraints). Return a tracked indirect-read variable.
  bool derivable = true;
  for (const ExprRef v : ctx_.variables(addr)) {
    const std::string& name = ctx_.var_name(v);
    if (parse_stack_var(name) || starts_with(name, "ind")) continue;
    bool is_init_reg = false;
    for (int k = 0; k < x86::kNumRegs; ++k)
      is_init_reg |= name == initial_reg_var(static_cast<x86::Reg>(k));
    if (!is_init_reg) derivable = false;
  }
  if (derivable) {
    const ExprRef var = ctx_.var(fresh_name("ind", width), width);
    st.ind_reads.push_back({addr, var, width});
    return var;
  }

  return ctx_.var(fresh_name("mem", width), width);
}

std::string Executor::fresh_name(const char* prefix, u8 width) {
  // Inside an origin scope names are a pure function of (tag, ordinal),
  // so concurrent extractors mint identical names for identical loads.
  if (use_origin_)
    return std::string(prefix) + "@" + hex(origin_tag_) + "." +
           std::to_string(origin_count_++) + "_" + std::to_string(width);
  // Otherwise the counter is process-global (and atomic: Executors on
  // different threads may share it) so Executor instances sharing one
  // Context never collide. Names also carry the width, since hash-consed
  // variables are width-unique.
  static std::atomic<u64> global_counter{0};
  return std::string(prefix) + std::to_string(global_counter.fetch_add(1)) +
         "_" + std::to_string(width);
}

void Executor::store(State& st, ExprRef addr, ExprRef value, u8 width) {
  st.writes.push_back({canonical_addr(addr), value, width});
}

Flow Executor::step(State& st, const ir::Lifted& l) {
  using ir::IrOp;
  if (governor_ && !governor_->sym_steps().try_consume())
    throw ResourceExhausted(
        Status::budget_exhausted("symbolic-step budget"));
  {
    static metrics::Counter& steps = metrics::registry().counter("sym.steps");
    steps.add();
  }
  std::vector<ExprRef> temps(l.num_temps, kNoExpr);

  for (const auto& c : l.compute) {
    ExprRef v = kNoExpr;
    const u8 w = c.width;
    switch (c.op) {
      case IrOp::Const: v = ctx_.constant(c.imm, w); break;
      case IrOp::GetReg: v = st.regs[static_cast<int>(c.reg)]; break;
      case IrOp::GetFlag: v = st.flags[static_cast<int>(c.flag)]; break;
      case IrOp::Load: v = load(st, temps[c.a], w); break;
      case IrOp::Add: v = ctx_.add(temps[c.a], temps[c.b]); break;
      case IrOp::Sub: v = ctx_.sub(temps[c.a], temps[c.b]); break;
      case IrOp::Mul: v = ctx_.mul(temps[c.a], temps[c.b]); break;
      case IrOp::And: v = ctx_.band(temps[c.a], temps[c.b]); break;
      case IrOp::Or: v = ctx_.bor(temps[c.a], temps[c.b]); break;
      case IrOp::Xor: v = ctx_.bxor(temps[c.a], temps[c.b]); break;
      case IrOp::Shl: v = ctx_.shl(temps[c.a], temps[c.b]); break;
      case IrOp::LShr: v = ctx_.lshr(temps[c.a], temps[c.b]); break;
      case IrOp::AShr: v = ctx_.ashr(temps[c.a], temps[c.b]); break;
      case IrOp::Not: v = ctx_.bnot(temps[c.a]); break;
      case IrOp::Neg: v = ctx_.neg(temps[c.a]); break;
      case IrOp::Eq: v = ctx_.eq(temps[c.a], temps[c.b]); break;
      case IrOp::Ult: v = ctx_.ult(temps[c.a], temps[c.b]); break;
      case IrOp::Slt: v = ctx_.slt(temps[c.a], temps[c.b]); break;
      case IrOp::Ite: v = ctx_.ite(temps[c.a], temps[c.b], temps[c.c]); break;
      case IrOp::ZExt: v = ctx_.zext(temps[c.a], w); break;
      case IrOp::SExt: v = ctx_.sext(temps[c.a], w); break;
      case IrOp::Trunc: v = ctx_.extract(temps[c.a], 0, w); break;
    }
    temps[c.dst] = v;
  }

  for (const auto& e : l.effects) {
    switch (e.kind) {
      case ir::EffectKind::PutReg:
        st.regs[static_cast<int>(e.reg)] = temps[e.value];
        break;
      case ir::EffectKind::PutFlag:
        st.flags[static_cast<int>(e.flag)] = temps[e.value];
        break;
      case ir::EffectKind::Store:
        store(st, temps[e.addr], temps[e.value], e.width);
        break;
    }
  }

  Flow f;
  f.kind = l.jump.kind;
  f.target = l.jump.target;
  f.fallthrough = l.jump.fallthrough;
  f.is_ret = l.jump.is_ret;
  f.is_call = l.jump.is_call;
  if (l.jump.target_temp != ir::kNoTemp)
    f.target_expr = temps[l.jump.target_temp];
  if (l.jump.cond != ir::kNoTemp) f.cond = temps[l.jump.cond];
  return f;
}

}  // namespace gp::sym
