// Virtualization obfuscation (the Tigress-style pass the paper singles out
// as the strongest): each function body is translated into a custom stack
// bytecode stored in the data section, and the function is replaced by an
// interpreter whose dispatch is a computed Switch — which the code generator
// compiles to `jmp [table + op*8]`, one indirect jump per executed VM
// instruction. That is exactly the structure that floods the binary with
// indirect-jump gadgets in the paper's measurements.
//
// VM: 16 bytes per instruction (u64 opcode, u64 operand); operand stack and
// virtual registers live in the function frame, so the machine-level
// register pressure and calling convention are untouched.
#include "obfuscate/obfuscate.hpp"

namespace gp::obf {

using cfg::Block;
using cfg::BlockId;
using cfg::Function;
using cfg::Instr;
using cfg::Opcode;
using cfg::Program;
using cfg::Temp;
using cfg::Terminator;

namespace {

// Fixed VM opcodes; call-site opcodes are appended after kFirstCall.
enum Vm : u64 {
  VPUSHC = 0,  // push operand
  VLD,         // push register[operand]
  VST,         // register[operand] = pop
  VADD, VSUB, VMUL, VAND, VOR, VXOR, VSHL, VSAR, VSHR,
  VCMPEQ, VCMPNE, VCMPLT, VCMPLE, VCMPGT, VCMPGE,
  VNOT, VNEG,
  VLOAD,    // push *(pop + operand)
  VLOADB,
  VSTORE,   // b = pop (value), a = pop (addr): *(a + operand) = b
  VSTOREB,
  VFRAME,   // push frame_base + operand (original frame area)
  VGLOBAL,  // push &data[operand]
  VOUT,     // out(pop)
  VJMP,     // pc = operand
  VJZ,      // if (pop == 0) pc = operand
  VRET,     // return pop
  kFirstCall,  // kFirstCall + i = call site class i
};

constexpr i64 kVmStackSlots = 256;

struct CallClass {
  i64 callee = 0;
  int nargs = 0;
  bool operator==(const CallClass&) const = default;
};

/// Bytecode emitter with jump backpatching.
class BytecodeBuilder {
 public:
  void op(u64 opcode, u64 operand = 0) {
    words_.push_back(opcode);
    words_.push_back(operand);
  }
  /// Emit a jump whose target block offset is patched later.
  void jump_to_block(u64 opcode, BlockId target) {
    fixups_.push_back({words_.size() + 1, target});
    op(opcode, 0);
  }
  void mark_block(BlockId b) {
    if (block_offsets_.size() <= static_cast<size_t>(b))
      block_offsets_.resize(b + 1, 0);
    block_offsets_[b] = byte_size();
  }
  u64 byte_size() const { return words_.size() * 8; }

  std::vector<u8> finish() {
    for (const auto& [word_index, target] : fixups_)
      words_[word_index] = block_offsets_[target];
    std::vector<u8> bytes;
    bytes.reserve(words_.size() * 8);
    for (const u64 w : words_)
      for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<u8>(w >> (8 * i)));
    return bytes;
  }

 private:
  std::vector<u64> words_;
  std::vector<std::pair<size_t, BlockId>> fixups_;
  std::vector<u64> block_offsets_;
};

u64 vm_binop(Opcode op) {
  switch (op) {
    case Opcode::Add: return VADD;
    case Opcode::Sub: return VSUB;
    case Opcode::Mul: return VMUL;
    case Opcode::And: return VAND;
    case Opcode::Or: return VOR;
    case Opcode::Xor: return VXOR;
    case Opcode::Shl: return VSHL;
    case Opcode::Sar: return VSAR;
    case Opcode::Shr: return VSHR;
    case Opcode::CmpEq: return VCMPEQ;
    case Opcode::CmpNe: return VCMPNE;
    case Opcode::CmpLt: return VCMPLT;
    case Opcode::CmpLe: return VCMPLE;
    case Opcode::CmpGt: return VCMPGT;
    case Opcode::CmpGe: return VCMPGE;
    default: fail("vm_binop: not a binop");
  }
}

class Virtualizer {
 public:
  Virtualizer(Program& prog, Function& f) : prog_(prog), f_(f) {}

  void run() {
    translate_body();
    build_interpreter();
  }

 private:
  // -- translation: CFG -> bytecode -------------------------------------

  void translate_body() {
    // The interpreter primes pc with the entry block's bytecode offset, so
    // blocks can be laid out in index order.
    for (BlockId b = 0; b < static_cast<BlockId>(f_.blocks.size()); ++b) {
      bc_.mark_block(b);
      translate_block(f_.blocks[b]);
    }
    bytecode_off_ = prog_.add_data(bc_.finish());
    entry_pc_ = entry_offset_;
  }

  void translate_block(const Block& blk) {
    if (&blk == &f_.blocks[f_.entry]) entry_offset_ = bc_.byte_size();
    for (const Instr& in : blk.instrs) translate_instr(in);
    translate_term(blk.term);
  }

  void translate_instr(const Instr& in) {
    switch (in.op) {
      case Opcode::Const:
        bc_.op(VPUSHC, static_cast<u64>(in.imm));
        bc_.op(VST, reg_index(in.dst));
        break;
      case Opcode::Copy:
        bc_.op(VLD, reg_index(in.a));
        bc_.op(VST, reg_index(in.dst));
        break;
      case Opcode::Not:
      case Opcode::Neg:
        bc_.op(VLD, reg_index(in.a));
        bc_.op(in.op == Opcode::Not ? VNOT : VNEG);
        bc_.op(VST, reg_index(in.dst));
        break;
      case Opcode::Load:
      case Opcode::LoadB:
        bc_.op(VLD, reg_index(in.a));
        bc_.op(in.op == Opcode::Load ? VLOAD : VLOADB,
               static_cast<u64>(in.imm));
        bc_.op(VST, reg_index(in.dst));
        break;
      case Opcode::Store:
      case Opcode::StoreB:
        bc_.op(VLD, reg_index(in.a));
        bc_.op(VLD, reg_index(in.b));
        bc_.op(in.op == Opcode::Store ? VSTORE : VSTOREB,
               static_cast<u64>(in.imm));
        break;
      case Opcode::FrameAddr:
        bc_.op(VFRAME, static_cast<u64>(in.imm));
        bc_.op(VST, reg_index(in.dst));
        break;
      case Opcode::GlobalAddr:
        bc_.op(VGLOBAL, static_cast<u64>(in.imm));
        bc_.op(VST, reg_index(in.dst));
        break;
      case Opcode::Out:
        bc_.op(VLD, reg_index(in.a));
        bc_.op(VOUT);
        break;
      case Opcode::Call: {
        for (const Temp arg : in.args) bc_.op(VLD, reg_index(arg));
        const CallClass cls{in.imm, static_cast<int>(in.args.size())};
        size_t idx = 0;
        for (; idx < call_classes_.size(); ++idx)
          if (call_classes_[idx] == cls) break;
        if (idx == call_classes_.size()) call_classes_.push_back(cls);
        bc_.op(kFirstCall + idx);
        bc_.op(VST, reg_index(in.dst));
        break;
      }
      default:
        GP_CHECK(cfg::is_binop(in.op), "virtualize: unexpected opcode");
        bc_.op(VLD, reg_index(in.a));
        bc_.op(VLD, reg_index(in.b));
        bc_.op(vm_binop(in.op));
        bc_.op(VST, reg_index(in.dst));
    }
  }

  void translate_term(const Terminator& t) {
    switch (t.kind) {
      case Terminator::Kind::Jump:
        bc_.jump_to_block(VJMP, t.target);
        break;
      case Terminator::Kind::Branch:
        bc_.op(VLD, reg_index(t.cond));
        bc_.jump_to_block(VJZ, t.fallthrough);
        bc_.jump_to_block(VJMP, t.target);
        break;
      case Terminator::Kind::Ret:
        bc_.op(VLD, reg_index(t.value));
        bc_.op(VRET);
        break;
      case Terminator::Kind::Switch:
        fail("virtualize: Switch input not supported (run before flatten)");
    }
  }

  u64 reg_index(Temp t) const { return static_cast<u64>(t); }

  // -- interpreter construction ------------------------------------------

  // Frame layout of the rebuilt function:
  //   [0, orig_frame)                      original FrameAddr area
  //   [reg_area, reg_area + 8*orig_temps)  virtual registers
  //   [stk_area, stk_area + 8*depth)       VM operand stack
  i64 reg_area() const { return orig_frame_; }
  i64 stk_area() const { return orig_frame_ + 8 * orig_temps_; }

  void build_interpreter() {
    orig_frame_ = f_.frame_bytes;
    orig_temps_ = f_.num_temps;
    const int params = f_.num_params;

    Function nf;
    nf.name = f_.name;
    nf.num_params = params;
    nf.num_temps = params;
    nf.frame_bytes = orig_frame_ + 8 * orig_temps_ + 8 * kVmStackSlots;

    // Working temps.
    pc_ = nf.new_temp();
    sp_ = nf.new_temp();
    op_ = nf.new_temp();
    arg_ = nf.new_temp();
    x_ = nf.new_temp();
    y_ = nf.new_temp();
    addr_ = nf.new_temp();
    scratch_ = nf.new_temp();

    // Blocks: entry, loop, handlers.
    const BlockId entry = nf.new_block();
    loop_ = nf.new_block();
    nf.entry = entry;

    // entry: spill params into the register area, init pc and sp.
    {
      Block& e = nf.blocks[entry];
      for (int i = 0; i < params; ++i) {
        e.instrs.push_back({.op = Opcode::FrameAddr, .dst = addr_,
                            .imm = reg_area() + 8 * i});
        e.instrs.push_back({.op = Opcode::Store, .a = addr_, .b = i});
      }
      e.instrs.push_back(Instr::constant(pc_, static_cast<i64>(entry_pc_)));
      e.instrs.push_back(Instr::constant(sp_, 0));
      e.term = Terminator::jump(loop_);
    }

    // loop: fetch op/arg, advance pc, dispatch.
    std::vector<BlockId> table;
    {
      Block& l = nf.blocks[loop_];
      l.instrs.push_back({.op = Opcode::GlobalAddr, .dst = addr_,
                          .imm = bytecode_off_});
      l.instrs.push_back(Instr::bin(Opcode::Add, addr_, addr_, pc_));
      l.instrs.push_back({.op = Opcode::Load, .dst = op_, .a = addr_});
      l.instrs.push_back({.op = Opcode::Load, .dst = arg_, .a = addr_,
                          .imm = 8});
      l.instrs.push_back(Instr::constant(scratch_, 16));
      l.instrs.push_back(Instr::bin(Opcode::Add, pc_, pc_, scratch_));
      // Dispatch table filled below.
    }

    const u64 num_ops = kFirstCall + call_classes_.size();
    for (u64 op = 0; op < num_ops; ++op) table.push_back(build_handler(nf, op));
    nf.blocks[loop_].term = Terminator::make_switch(op_, table);
    // Every opcode this translator writes into the bytecode indexes a
    // handler built above; declare the bound so codegen keeps the
    // unchecked computed dispatch a generated interpreter uses.
    nf.blocks[loop_].term.sel_bound = static_cast<i64>(num_ops);

    f_ = std::move(nf);
  }

  // Handler helpers: emit push/pop against the frame-resident VM stack.
  void vm_push(Block& b, Function& nf, Temp value) {
    b.instrs.push_back({.op = Opcode::FrameAddr, .dst = addr_,
                        .imm = stk_area()});
    b.instrs.push_back(Instr::bin(Opcode::Add, addr_, addr_, sp_));
    b.instrs.push_back({.op = Opcode::Store, .a = addr_, .b = value});
    const Temp eight = nf.new_temp();
    b.instrs.push_back(Instr::constant(eight, 8));
    b.instrs.push_back(Instr::bin(Opcode::Add, sp_, sp_, eight));
  }
  void vm_pop(Block& b, Function& nf, Temp into) {
    const Temp eight = nf.new_temp();
    b.instrs.push_back(Instr::constant(eight, 8));
    b.instrs.push_back(Instr::bin(Opcode::Sub, sp_, sp_, eight));
    b.instrs.push_back({.op = Opcode::FrameAddr, .dst = addr_,
                        .imm = stk_area()});
    b.instrs.push_back(Instr::bin(Opcode::Add, addr_, addr_, sp_));
    b.instrs.push_back({.op = Opcode::Load, .dst = into, .a = addr_});
  }
  void vm_reg_addr(Block& b, Function& nf) {
    // addr_ = &registers[arg_]  (arg_ is a temp index; slots are 8 bytes)
    const Temp three = nf.new_temp();
    b.instrs.push_back(Instr::constant(three, 3));
    const Temp off = nf.new_temp();
    b.instrs.push_back(Instr::bin(Opcode::Shl, off, arg_, three));
    b.instrs.push_back({.op = Opcode::FrameAddr, .dst = addr_,
                        .imm = reg_area()});
    b.instrs.push_back(Instr::bin(Opcode::Add, addr_, addr_, off));
  }

  BlockId build_handler(Function& nf, u64 op) {
    const BlockId hb = nf.new_block();
    // NOTE: take the Block pointer fresh after any new_block call; here all
    // blocks for this handler are created up front.
    Block& b = nf.blocks[hb];
    auto done = [&] { nf.blocks[hb].term = Terminator::jump(loop_); };

    if (op >= kFirstCall) {
      const CallClass cls = call_classes_[op - kFirstCall];
      // Pop args (reverse order), call, push result.
      std::vector<Temp> args(cls.nargs);
      for (int i = 0; i < cls.nargs; ++i) args[i] = nf.new_temp();
      for (int i = cls.nargs - 1; i >= 0; --i)
        vm_pop(nf.blocks[hb], nf, args[i]);
      nf.blocks[hb].instrs.push_back(
          {.op = Opcode::Call, .dst = x_, .imm = cls.callee, .args = args});
      vm_push(nf.blocks[hb], nf, x_);
      done();
      return hb;
    }

    switch (op) {
      case VPUSHC:
        vm_push(b, nf, arg_);
        done();
        break;
      case VLD:
        vm_reg_addr(b, nf);
        nf.blocks[hb].instrs.push_back(
            {.op = Opcode::Load, .dst = x_, .a = addr_});
        vm_push(nf.blocks[hb], nf, x_);
        done();
        break;
      case VST: {
        vm_pop(b, nf, x_);
        vm_reg_addr(nf.blocks[hb], nf);
        nf.blocks[hb].instrs.push_back(
            {.op = Opcode::Store, .a = addr_, .b = x_});
        done();
        break;
      }
      case VNOT:
      case VNEG:
        vm_pop(b, nf, x_);
        nf.blocks[hb].instrs.push_back(
            {.op = op == VNOT ? Opcode::Not : Opcode::Neg, .dst = x_,
             .a = x_});
        vm_push(nf.blocks[hb], nf, x_);
        done();
        break;
      case VLOAD:
      case VLOADB:
        // pop address, fold the byte offset from arg_, load, push result.
        vm_pop(b, nf, x_);
        nf.blocks[hb].instrs.push_back(Instr::bin(Opcode::Add, x_, x_, arg_));
        nf.blocks[hb].instrs.push_back(
            {.op = op == VLOAD ? Opcode::Load : Opcode::LoadB, .dst = y_,
             .a = x_});
        vm_push(nf.blocks[hb], nf, y_);
        done();
        break;
      case VSTORE:
      case VSTOREB:
        vm_pop(b, nf, y_);  // value
        vm_pop(nf.blocks[hb], nf, x_);  // address
        nf.blocks[hb].instrs.push_back(Instr::bin(Opcode::Add, x_, x_, arg_));
        nf.blocks[hb].instrs.push_back(
            {.op = op == VSTORE ? Opcode::Store : Opcode::StoreB, .a = x_,
             .b = y_});
        done();
        break;
      case VFRAME: {
        nf.blocks[hb].instrs.push_back(
            {.op = Opcode::FrameAddr, .dst = x_, .imm = 0});
        nf.blocks[hb].instrs.push_back(Instr::bin(Opcode::Add, x_, x_, arg_));
        vm_push(nf.blocks[hb], nf, x_);
        done();
        break;
      }
      case VGLOBAL: {
        nf.blocks[hb].instrs.push_back(
            {.op = Opcode::GlobalAddr, .dst = x_, .imm = 0});
        nf.blocks[hb].instrs.push_back(Instr::bin(Opcode::Add, x_, x_, arg_));
        vm_push(nf.blocks[hb], nf, x_);
        done();
        break;
      }
      case VOUT:
        vm_pop(b, nf, x_);
        nf.blocks[hb].instrs.push_back({.op = Opcode::Out, .a = x_});
        done();
        break;
      case VJMP:
        nf.blocks[hb].instrs.push_back(
            Instr::bin(Opcode::Copy, pc_, arg_, cfg::kNoTemp));
        done();
        break;
      case VJZ: {
        vm_pop(b, nf, x_);
        const BlockId take = nf.new_block();
        nf.blocks[take].instrs.push_back(
            Instr::bin(Opcode::Copy, pc_, arg_, cfg::kNoTemp));
        nf.blocks[take].term = Terminator::jump(loop_);
        nf.blocks[hb].term = Terminator::branch(x_, loop_, take);
        return hb;  // custom terminator
      }
      case VRET:
        vm_pop(b, nf, x_);
        nf.blocks[hb].term = Terminator::ret(x_);
        return hb;
      default:
        // Binary ALU / compare ops.
        vm_pop(b, nf, y_);
        vm_pop(nf.blocks[hb], nf, x_);
        Opcode cop;
        switch (op) {
          case VADD: cop = Opcode::Add; break;
          case VSUB: cop = Opcode::Sub; break;
          case VMUL: cop = Opcode::Mul; break;
          case VAND: cop = Opcode::And; break;
          case VOR: cop = Opcode::Or; break;
          case VXOR: cop = Opcode::Xor; break;
          case VSHL: cop = Opcode::Shl; break;
          case VSAR: cop = Opcode::Sar; break;
          case VSHR: cop = Opcode::Shr; break;
          case VCMPEQ: cop = Opcode::CmpEq; break;
          case VCMPNE: cop = Opcode::CmpNe; break;
          case VCMPLT: cop = Opcode::CmpLt; break;
          case VCMPLE: cop = Opcode::CmpLe; break;
          case VCMPGT: cop = Opcode::CmpGt; break;
          case VCMPGE: cop = Opcode::CmpGe; break;
          default: fail("bad VM opcode");
        }
        nf.blocks[hb].instrs.push_back(Instr::bin(cop, x_, x_, y_));
        vm_push(nf.blocks[hb], nf, x_);
        done();
    }
    return hb;
  }

  Program& prog_;
  Function& f_;
  BytecodeBuilder bc_;
  std::vector<CallClass> call_classes_;
  i64 bytecode_off_ = 0;
  u64 entry_offset_ = 0;
  u64 entry_pc_ = 0;
  i64 orig_frame_ = 0;
  int orig_temps_ = 0;
  Temp pc_{}, sp_{}, op_{}, arg_{}, x_{}, y_{}, addr_{}, scratch_{};
  BlockId loop_{};
};

}  // namespace

void pass_virtualize(Program& prog, Rng& rng) {
  (void)rng;
  for (Function& f : prog.functions) {
    Virtualizer(prog, f).run();
  }
}

}  // namespace gp::obf
