// Obfuscation passes over the CFG IR — the reproduction's stand-ins for
// Obfuscator-LLVM and Tigress (Sec. II-A of the paper):
//
//   substitution   instruction substitution: add/sub/xor/and/or rewritten
//                  into equivalent longer forms (identities proven valid in
//                  tests/test_solver.cpp);
//   bogus_cf       bogus control flow guarded by the always-true opaque
//                  predicate (x*x + x) % 2 == 0, with never-executed junk
//                  blocks that decode into gadget-rich machine code;
//   flatten        control-flow flattening through a switch dispatcher
//                  (compiles to an indirect jump through a data-section
//                  table);
//   encode_data    literal encoding: constants split into xor/add pairs with
//                  random keys;
//   virtualize     translation to a custom 16-byte-per-instruction stack
//                  bytecode, executed by a per-function interpreter whose
//                  dispatch is a computed switch — the jump-heavy structure
//                  the paper blames for virtualization's gadget explosion.
//
// Paper profiles: LLVM-Obf = substitution + bogus_cf + flatten;
//                 Tigress  = all five.
// Pass order: substitution, encode_data, virtualize, bogus_cf, flatten —
// so bogus CF and flattening also harden the emitted VM interpreter.
#pragma once

#include "cfg/cfg.hpp"
#include "support/rng.hpp"

namespace gp::obf {

struct Options {
  bool substitution = false;
  bool bogus_cf = false;
  bool flatten = false;
  bool encode_data = false;
  bool virtualize = false;
  u64 seed = 1;
  /// Probability that bogus_cf instruments a given block.
  double bogus_prob = 0.5;
  /// Substitution rewrite rounds.
  int substitution_rounds = 1;

  static Options llvm_obf(u64 seed = 1) {
    return {.substitution = true, .bogus_cf = true, .flatten = true,
            .seed = seed};
  }
  static Options tigress(u64 seed = 1) {
    return {.substitution = true, .bogus_cf = true, .flatten = true,
            .encode_data = true, .virtualize = true, .seed = seed};
  }
  static Options none() { return {}; }
  std::string name() const;
};

/// Apply the selected passes in canonical order. The result passes
/// cfg::verify and is semantically equivalent to the input (property-tested
/// end-to-end through the emulator).
void obfuscate(cfg::Program& prog, const Options& opts);

// Individual passes (exposed for the per-obfuscation experiment, Fig. 5).
void pass_substitution(cfg::Program& prog, Rng& rng, int rounds);
void pass_bogus_cf(cfg::Program& prog, Rng& rng, double prob);
void pass_flatten(cfg::Program& prog, Rng& rng);
void pass_encode_data(cfg::Program& prog, Rng& rng);
void pass_virtualize(cfg::Program& prog, Rng& rng);

}  // namespace gp::obf
