#include "obfuscate/obfuscate.hpp"

#include <algorithm>

namespace gp::obf {

using cfg::Block;
using cfg::BlockId;
using cfg::Function;
using cfg::Instr;
using cfg::Opcode;
using cfg::Program;
using cfg::Temp;
using cfg::Terminator;

std::string Options::name() const {
  std::vector<std::string> parts;
  if (substitution) parts.push_back("sub");
  if (encode_data) parts.push_back("enc");
  if (virtualize) parts.push_back("virt");
  if (bogus_cf) parts.push_back("bcf");
  if (flatten) parts.push_back("fla");
  if (parts.empty()) return "none";
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) out += (i ? "+" : "") + parts[i];
  return out;
}

// ---------------------------------------------------------------------------
// Instruction substitution
// ---------------------------------------------------------------------------

namespace {

/// Rewrite one instruction into an equivalent sequence; returns true if it
/// produced a substitution into `out`.
bool substitute_one(Function& f, const Instr& in, Rng& rng,
                    std::vector<Instr>& out) {
  const Temp d = in.dst, a = in.a, b = in.b;
  auto t = [&] { return f.new_temp(); };
  auto C = [&](Temp dst, i64 v) { out.push_back(Instr::constant(dst, v)); };
  auto B = [&](Opcode op, Temp dst, Temp x, Temp y) {
    out.push_back(Instr::bin(op, dst, x, y));
  };
  auto U = [&](Opcode op, Temp dst, Temp x) {
    out.push_back({.op = op, .dst = dst, .a = x});
  };

  switch (in.op) {
    case Opcode::Add:
      if (rng.chance(0.5)) {
        // a + b == (a ^ b) + ((a & b) << 1)
        const Temp x = t(), n = t(), one = t(), sh = t();
        B(Opcode::Xor, x, a, b);
        B(Opcode::And, n, a, b);
        C(one, 1);
        B(Opcode::Shl, sh, n, one);
        B(Opcode::Add, d, x, sh);
      } else {
        // a + b == (a | b) + (a & b)
        const Temp o = t(), n = t();
        B(Opcode::Or, o, a, b);
        B(Opcode::And, n, a, b);
        B(Opcode::Add, d, o, n);
      }
      return true;
    case Opcode::Sub:
      if (rng.chance(0.5)) {
        // a - b == a + (~b + 1)
        const Temp nb = t(), one = t(), neg = t();
        U(Opcode::Not, nb, b);
        C(one, 1);
        B(Opcode::Add, neg, nb, one);
        B(Opcode::Add, d, a, neg);
      } else {
        // a - b == (a ^ b) - ((~a & b) << 1)
        const Temp x = t(), na = t(), n = t(), one = t(), sh = t();
        B(Opcode::Xor, x, a, b);
        U(Opcode::Not, na, a);
        B(Opcode::And, n, na, b);
        C(one, 1);
        B(Opcode::Shl, sh, n, one);
        B(Opcode::Sub, d, x, sh);
      }
      return true;
    case Opcode::Xor: {
      // a ^ b == (~a & b) | (a & ~b)   — the paper's running example
      const Temp na = t(), nb = t(), l = t(), r = t();
      U(Opcode::Not, na, a);
      B(Opcode::And, l, na, b);
      U(Opcode::Not, nb, b);
      B(Opcode::And, r, a, nb);
      B(Opcode::Or, d, l, r);
      return true;
    }
    case Opcode::Or: {
      // a | b == (a & b) + (a ^ b)
      const Temp n = t(), x = t();
      B(Opcode::And, n, a, b);
      B(Opcode::Xor, x, a, b);
      B(Opcode::Add, d, n, x);
      return true;
    }
    case Opcode::And: {
      // a & b == (a | b) ^ (a ^ b)
      const Temp o = t(), x = t();
      B(Opcode::Or, o, a, b);
      B(Opcode::Xor, x, a, b);
      B(Opcode::Xor, d, o, x);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

void pass_substitution(Program& prog, Rng& rng, int rounds) {
  for (Function& f : prog.functions) {
    for (int round = 0; round < rounds; ++round) {
      for (Block& blk : f.blocks) {
        std::vector<Instr> out;
        out.reserve(blk.instrs.size() * 3);
        for (const Instr& in : blk.instrs) {
          if (!substitute_one(f, in, rng, out)) out.push_back(in);
        }
        blk.instrs = std::move(out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bogus control flow
// ---------------------------------------------------------------------------

namespace {

/// Redirect every edge pointing at `from` to `to` (terminators + entry).
void redirect_edges(Function& f, BlockId from, BlockId to,
                    BlockId skip_block) {
  if (f.entry == from) f.entry = to;
  for (size_t b = 0; b < f.blocks.size(); ++b) {
    if (static_cast<BlockId>(b) == skip_block) continue;
    Terminator& t = f.blocks[b].term;
    if (t.kind == Terminator::Kind::Jump || t.kind == Terminator::Kind::Branch) {
      if (t.target == from) t.target = to;
    }
    if (t.kind == Terminator::Kind::Branch && t.fallthrough == from)
      t.fallthrough = to;
    if (t.kind == Terminator::Kind::Switch)
      for (BlockId& tgt : t.table)
        if (tgt == from) tgt = to;
  }
}

/// Emit an always-true predicate over `x` into `pred`, returning the 0/1
/// condition temp. Each family is an algebraic tautology (validity of each
/// is solver-proven in tests/test_obfuscate.cpp).
Temp emit_opaque_predicate(Function& f, Block& pred, Temp x, Rng& rng) {
  auto C = [&](i64 v) {
    const Temp t = f.new_temp();
    pred.instrs.push_back(Instr::constant(t, v));
    return t;
  };
  auto B = [&](Opcode op, Temp a, Temp b) {
    const Temp t = f.new_temp();
    pred.instrs.push_back(Instr::bin(op, t, a, b));
    return t;
  };
  switch (rng.below(4)) {
    case 0: {
      // (x^2 + x) is always even.
      const Temp sum = B(Opcode::Add, B(Opcode::Mul, x, x), x);
      return B(Opcode::CmpEq, B(Opcode::And, sum, C(1)), C(0));
    }
    case 1: {
      // x & 1 is 0 or 1, so (x & 1) < 2.
      return B(Opcode::CmpLt, B(Opcode::And, x, C(1)), C(2));
    }
    case 2: {
      // (x | 1) is odd: its low bit is 1.
      return B(Opcode::CmpEq, B(Opcode::And, B(Opcode::Or, x, C(1)), C(1)),
               C(1));
    }
    default: {
      // x^3 - x = x(x-1)(x+1): product of 3 consecutive ints, always even.
      const Temp cube = B(Opcode::Mul, B(Opcode::Mul, x, x), x);
      const Temp diff = B(Opcode::Sub, cube, x);
      return B(Opcode::CmpEq, B(Opcode::And, diff, C(1)), C(0));
    }
  }
}

/// Emit plausible-looking junk computation over fresh temps. Never executed,
/// but it compiles into real, decodable machine code — the raw material of
/// the paper's obfuscation-introduced gadgets.
void emit_junk(Function& f, Rng& rng, std::vector<Instr>& out,
               i64 junk_slot) {
  const int n = 2 + static_cast<int>(rng.below(5));
  std::vector<Temp> pool;
  for (int i = 0; i < n; ++i) {
    const Temp d = f.new_temp();
    if (pool.size() < 2 || rng.chance(0.3)) {
      out.push_back(Instr::constant(d, static_cast<i64>(rng.next())));
    } else {
      static const Opcode ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                   Opcode::Xor, Opcode::Or,  Opcode::And,
                                   Opcode::Shl, Opcode::Sar};
      out.push_back(Instr::bin(ops[rng.below(std::size(ops))], d,
                               pool[rng.below(pool.size())],
                               pool[rng.below(pool.size())]));
    }
    pool.push_back(d);
  }
  // A dead store to a dedicated junk frame slot.
  const Temp addr = f.new_temp();
  out.push_back({.op = Opcode::FrameAddr, .dst = addr, .imm = junk_slot});
  out.push_back({.op = Opcode::Store, .a = addr, .b = pool.back()});
}

}  // namespace

void pass_bogus_cf(Program& prog, Rng& rng, double prob) {
  for (Function& f : prog.functions) {
    // Dedicated junk slot so dead stores cannot touch live state even if a
    // bug ever made them reachable.
    const i64 junk_slot = f.frame_bytes;
    f.frame_bytes += 8;

    const auto original_count = static_cast<BlockId>(f.blocks.size());
    for (BlockId b = 0; b < original_count; ++b) {
      if (!rng.chance(prob)) continue;

      const BlockId pred_b = f.new_block();
      const BlockId junk_b = f.new_block();
      redirect_edges(f, b, pred_b, pred_b);

      // Always-true opaque predicate, drawn from the classic families the
      // paper cites [17][18]; seeded from a live value when one exists.
      Block& pred = f.blocks[pred_b];
      const Temp x =
          f.num_params > 0 ? static_cast<Temp>(rng.below(f.num_params))
                           : f.new_temp();
      if (f.num_params == 0)
        pred.instrs.push_back(
            Instr::constant(x, static_cast<i64>(rng.next())));
      const Temp cond = emit_opaque_predicate(f, pred, x, rng);
      pred.term = Terminator::branch(cond, b, junk_b);

      Block& junk = f.blocks[junk_b];
      emit_junk(f, rng, junk.instrs, junk_slot);
      junk.term = Terminator::jump(b);
    }
  }
}

// ---------------------------------------------------------------------------
// Control-flow flattening
// ---------------------------------------------------------------------------

void pass_flatten(Program& prog, Rng& rng) {
  for (Function& f : prog.functions) {
    const auto original_count = static_cast<BlockId>(f.blocks.size());
    if (original_count < 2) continue;

    // Shuffled dispatch table: state s routes to table[s].
    std::vector<BlockId> table(original_count);
    for (BlockId b = 0; b < original_count; ++b) table[b] = b;
    for (size_t i = table.size(); i > 1; --i)
      std::swap(table[i - 1], table[rng.below(i)]);
    std::vector<i64> state_of(original_count);
    for (size_t s = 0; s < table.size(); ++s) state_of[table[s]] = s;

    const Temp state = f.new_temp();
    const BlockId dispatch = f.new_block();
    f.blocks[dispatch].term = Terminator::make_switch(state, table);

    for (BlockId b = 0; b < original_count; ++b) {
      Terminator& t = f.blocks[b].term;
      auto& instrs = f.blocks[b].instrs;
      switch (t.kind) {
        case Terminator::Kind::Jump:
          instrs.push_back(Instr::constant(state, state_of[t.target]));
          t = Terminator::jump(dispatch);
          break;
        case Terminator::Kind::Branch: {
          // state = s_false + (cond != 0) * (s_true - s_false).
          // Branch conditions are "non-zero taken", so normalize to 0/1
          // before the arithmetic select.
          const Temp zero = f.new_temp(), norm = f.new_temp(),
                     st = f.new_temp(), sf = f.new_temp(),
                     diff = f.new_temp(), m = f.new_temp();
          instrs.push_back(Instr::constant(zero, 0));
          instrs.push_back(Instr::bin(Opcode::CmpNe, norm, t.cond, zero));
          instrs.push_back(Instr::constant(st, state_of[t.target]));
          instrs.push_back(Instr::constant(sf, state_of[t.fallthrough]));
          instrs.push_back(Instr::bin(Opcode::Sub, diff, st, sf));
          instrs.push_back(Instr::bin(Opcode::Mul, m, norm, diff));
          instrs.push_back(Instr::bin(Opcode::Add, state, sf, m));
          t = Terminator::jump(dispatch);
          break;
        }
        case Terminator::Kind::Switch:
        case Terminator::Kind::Ret:
          break;  // computed/exit edges stay direct
      }
    }

    // New entry primes the state variable.
    const BlockId new_entry = f.new_block();
    f.blocks[new_entry].instrs.push_back(
        Instr::constant(state, state_of[f.entry]));
    f.blocks[new_entry].term = Terminator::jump(dispatch);
    f.entry = new_entry;
  }
}

// ---------------------------------------------------------------------------
// Data encoding
// ---------------------------------------------------------------------------

void pass_encode_data(Program& prog, Rng& rng) {
  for (Function& f : prog.functions) {
    for (Block& blk : f.blocks) {
      std::vector<Instr> out;
      out.reserve(blk.instrs.size() * 2);
      for (const Instr& in : blk.instrs) {
        if (in.op != Opcode::Const) {
          out.push_back(in);
          continue;
        }
        const i64 key = static_cast<i64>(rng.next());
        const Temp enc = f.new_temp(), k = f.new_temp();
        if (rng.chance(0.5)) {
          out.push_back(Instr::constant(enc, in.imm ^ key));
          out.push_back(Instr::constant(k, key));
          out.push_back(Instr::bin(Opcode::Xor, in.dst, enc, k));
        } else {
          out.push_back(Instr::constant(enc, in.imm - key));
          out.push_back(Instr::constant(k, key));
          out.push_back(Instr::bin(Opcode::Add, in.dst, enc, k));
        }
      }
      blk.instrs = std::move(out);
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void obfuscate(Program& prog, const Options& opts) {
  Rng rng(opts.seed * 0x9e3779b97f4a7c15ULL + 0xabcdef);
  if (opts.substitution)
    pass_substitution(prog, rng, opts.substitution_rounds);
  if (opts.encode_data) pass_encode_data(prog, rng);
  if (opts.virtualize) pass_virtualize(prog, rng);
  if (opts.bogus_cf) pass_bogus_cf(prog, rng, opts.bogus_prob);
  if (opts.flatten) pass_flatten(prog, rng);
  cfg::verify(prog);
}

}  // namespace gp::obf
