// Versioned, checksummed on-disk artifact store: the durable half of
// checkpoint/resume.
//
// An artifact is a list of byte records (a gadget pool, a chain list)
// filed under a content-hash key of (input bytes, stage options, format
// version). Invariants the rest of the system leans on:
//
//  - Nothing on disk is ever trusted. Every record carries its own CRC32,
//    the file header pins magic + format version + key, and the manifest
//    cross-checks the whole file's size and CRC. A truncated, bit-flipped,
//    version-bumped or stale file reads as *absent* — get() returns
//    nullopt and the caller recomputes; corruption is counted, never
//    propagated.
//  - Torn writes are invisible. Artifact files and the manifest are
//    published with temp-file + rename (serial::write_file_atomic), and an
//    artifact is only trusted once its manifest entry exists — the
//    manifest is written after the artifact, so a crash between the two
//    leaves an orphan file that is treated as missing.
//  - Keys are pure content hashes. The same (binary image, options,
//    version) always maps to the same key, so a new process resumes
//    whatever an interrupted one finished, and unrelated inputs can share
//    one store directory.
//
// The store distinguishes a *cache hit* (artifact written by this process)
// from a *resume* (written by an earlier, presumably interrupted process)
// via the writer pid recorded in the header — core::StageReport surfaces
// both counters.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/serial.hpp"
#include "support/status.hpp"

namespace gp::store {

/// Bumped whenever any serialized layout changes; artifacts from another
/// version are stale by definition.
constexpr u32 kFormatVersion = 1;

struct Stats {
  u64 hits = 0;         // artifact served (same process)
  u64 resumes = 0;      // artifact served (written by another process)
  u64 misses = 0;       // no artifact (or unreadable file)
  u64 corrupt = 0;      // CRC/framing parse failure -> dropped, recomputed
  u64 stale = 0;        // version/manifest mismatch or orphan file
  u64 puts = 0;
  u64 put_failures = 0;
  /// put() calls whose bytes already matched the manifest entry on disk —
  /// the rewrite (and its fsync/rename) was skipped. Warm-start memo
  /// writers put identical content every run; this makes those puts free.
  u64 put_noops = 0;

  /// Field-wise difference (*this - baseline). Store handles are shared by
  /// every session on one directory; a session reports the activity of its
  /// own window by snapshotting stats at open and diffing at close.
  Stats since(const Stats& b) const {
    return {hits - b.hits,
            resumes - b.resumes,
            misses - b.misses,
            corrupt - b.corrupt,
            stale - b.stale,
            puts - b.puts,
            put_failures - b.put_failures,
            put_noops - b.put_noops};
  }
};

struct Artifact {
  std::vector<std::vector<u8>> records;
  /// True when the artifact was written by this process (cache hit rather
  /// than a cross-process resume).
  bool same_process = false;
};

class ArtifactStore {
 public:
  /// Creates `dir` (and parents) if needed and loads the manifest; an
  /// unreadable or corrupt manifest starts empty (existing artifacts then
  /// read as stale and are rebuilt).
  explicit ArtifactStore(std::string dir, u32 version = kFormatVersion);

  /// GP_STORE_DIR-configured store, or nullptr when the knob is unset.
  static std::unique_ptr<ArtifactStore> from_env();

  /// Content-hash key: fnv1a(version || stage || material). The returned
  /// string is filename-safe ("<stage>-<hex16>").
  std::string key(const std::string& stage,
                  const serial::Writer& material) const;

  /// Persist `records` under `key` (atomic write + manifest update).
  Status put(const std::string& key,
             const std::vector<std::vector<u8>>& records);

  /// Load and fully verify the artifact under `key`; nullopt on miss,
  /// corruption, truncation or version mismatch (failed artifacts are
  /// dropped from the manifest so the rebuilt value replaces them).
  std::optional<Artifact> get(const std::string& key);

  const std::string& dir() const { return dir_; }
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct ManifestEntry {
    u64 size = 0;
    u32 crc = 0;
  };

  std::string path_for(const std::string& key) const;
  void load_manifest();
  Status save_manifest_locked();

  std::string dir_;
  u32 version_;
  std::map<std::string, ManifestEntry> manifest_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace gp::store
