#include "store/store.hpp"

#include <unistd.h>

#include <filesystem>

#include "support/config.hpp"
#include "support/metrics.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace gp::store {

namespace {

constexpr u32 kArtifactMagic = 0x46415047;  // "GPAF"
constexpr u32 kManifestMagic = 0x464D5047;  // "GPMF"
const char* kManifestName = "manifest.gpm";

std::string hex16(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

metrics::Counter& store_counter(const char* name) {
  return metrics::registry().counter(std::string("store.") + name);
}

}  // namespace

ArtifactStore::ArtifactStore(std::string dir, u32 version)
    : dir_(std::move(dir)), version_(version) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; puts report
  load_manifest();
}

std::unique_ptr<ArtifactStore> ArtifactStore::from_env() {
  const std::string dir = Config::from_env().store_dir;
  if (dir.empty()) return nullptr;
  return std::make_unique<ArtifactStore>(dir);
}

std::string ArtifactStore::key(const std::string& stage,
                               const serial::Writer& material) const {
  serial::Writer w;
  w.put_u32(version_);
  w.put_str(stage);
  w.put_raw(material.bytes());
  return stage + "-" + hex16(serial::fnv1a(w.bytes()));
}

std::string ArtifactStore::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".gpa";
}

Status ArtifactStore::put(const std::string& key,
                          const std::vector<std::vector<u8>>& records) {
  trace::Span span("store.put", "io");
  serial::Writer w;
  w.put_u32(kArtifactMagic);
  w.put_u32(version_);
  serial::Writer header;
  header.put_u64(static_cast<u64>(::getpid()));
  header.put_str(key);
  header.put_u32(static_cast<u32>(records.size()));
  serial::put_record(w, header.bytes());
  for (const auto& rec : records) serial::put_record(w, rec);

  std::lock_guard<std::mutex> lock(mu_);
  // Identical-content rewrite elision: when the manifest already records
  // exactly these bytes and the artifact file is still present, the write
  // (temp file + rename + manifest rewrite) is pure churn — skip it.
  // Content must match bit-for-bit (size AND crc), so a stale or corrupt
  // file still gets replaced; cross-process re-puts differ in the header
  // pid and take the full path, preserving hit-vs-resume attribution.
  if (const auto it = manifest_.find(key); it != manifest_.end()) {
    std::error_code ec;
    if (it->second.size == w.size() &&
        it->second.crc == serial::crc32(w.bytes()) &&
        std::filesystem::exists(path_for(key), ec)) {
      ++stats_.put_noops;
      store_counter("put_noops").add();
      return Status();
    }
  }
  Status st = serial::write_file_atomic(path_for(key), w.bytes());
  if (!st.ok()) {
    ++stats_.put_failures;
    store_counter("put_failures").add();
    return st;
  }
  ++stats_.puts;
  store_counter("puts").add();
  store_counter("bytes_written").add(w.size());
  // Manifest is updated strictly after the artifact is live: a crash (or
  // injected rename fault) between the two leaves an orphan file, which
  // get() classifies as stale and rebuilds — never a half-trusted entry.
  manifest_[key] = {w.size(), serial::crc32(w.bytes())};
  return save_manifest_locked();
}

std::optional<Artifact> ArtifactStore::get(const std::string& key) {
  trace::Span span("store.get", "io");
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = path_for(key);
  auto it = manifest_.find(key);
  if (it == manifest_.end()) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      ++stats_.stale;  // orphan: written but never published in a manifest
      store_counter("stale").add();
    } else {
      ++stats_.misses;
      store_counter("misses").add();
    }
    return std::nullopt;
  }

  auto bytes = serial::read_file(path);
  if (!bytes.ok()) {
    ++stats_.misses;
    store_counter("misses").add();
    manifest_.erase(it);
    return std::nullopt;
  }
  // Whole-file cross-check against the manifest first: catches truncation
  // and stale files even when the damage lands in padding the record CRCs
  // would not cover.
  const auto& data = bytes.value();
  auto drop = [&](u64& counter, const char* why) -> std::optional<Artifact> {
    ++counter;
    store_counter(why).add();
    manifest_.erase(it);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    save_manifest_locked().ok();  // best effort
    return std::nullopt;
  };
  if (data.size() != it->second.size ||
      serial::crc32(data) != it->second.crc)
    return drop(stats_.corrupt, "corrupt");

  serial::Reader r(data);
  if (r.get_u32() != kArtifactMagic) return drop(stats_.corrupt, "corrupt");
  if (r.get_u32() != version_) return drop(stats_.stale, "stale");
  auto header = serial::get_record(r);
  if (!header) return drop(stats_.corrupt, "corrupt");
  serial::Reader hr(*header);
  const u64 writer_pid = hr.get_u64();
  const std::string stored_key = hr.get_str();
  const u32 count = hr.get_u32();
  if (!hr.ok() || !hr.at_end() || stored_key != key)
    return drop(stats_.corrupt, "corrupt");

  Artifact art;
  art.same_process = writer_pid == static_cast<u64>(::getpid());
  art.records.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    auto rec = serial::get_record(r);
    if (!rec) return drop(stats_.corrupt, "corrupt");
    art.records.push_back(std::move(*rec));
  }
  if (!r.at_end()) return drop(stats_.corrupt, "corrupt");

  store_counter("bytes_read").add(data.size());
  if (art.same_process) {
    ++stats_.hits;
    store_counter("hits").add();
  } else {
    ++stats_.resumes;
    store_counter("resumes").add();
  }
  return art;
}

void ArtifactStore::load_manifest() {
  manifest_.clear();
  auto bytes = serial::read_file(dir_ + "/" + kManifestName);
  if (!bytes.ok()) return;  // first run (or unreadable): start empty
  serial::Reader r(bytes.value());
  if (r.get_u32() != kManifestMagic || r.get_u32() != version_) return;
  auto payload = serial::get_record(r);
  if (!payload || !r.at_end()) return;
  serial::Reader pr(*payload);
  const u32 count = pr.get_u32();
  std::map<std::string, ManifestEntry> loaded;
  for (u32 i = 0; i < count; ++i) {
    const std::string key = pr.get_str();
    ManifestEntry e;
    e.size = pr.get_u64();
    e.crc = pr.get_u32();
    if (!pr.ok() || key.empty()) return;  // corrupt manifest: trust nothing
    loaded.emplace(key, e);
  }
  if (!pr.at_end()) return;
  manifest_ = std::move(loaded);
}

Status ArtifactStore::save_manifest_locked() {
  serial::Writer payload;
  payload.put_u32(static_cast<u32>(manifest_.size()));
  for (const auto& [key, e] : manifest_) {
    payload.put_str(key);
    payload.put_u64(e.size);
    payload.put_u32(e.crc);
  }
  serial::Writer w;
  w.put_u32(kManifestMagic);
  w.put_u32(version_);
  serial::put_record(w, payload.bytes());
  return serial::write_file_atomic(dir_ + "/" + kManifestName, w.bytes());
}

}  // namespace gp::store
