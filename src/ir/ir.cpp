#include "ir/ir.hpp"

namespace gp::ir {

const char* flag_name(Flag f) {
  static const char* names[] = {"zf", "sf", "cf", "of", "pf"};
  return names[static_cast<unsigned>(f)];
}

}  // namespace gp::ir
