// Micro-IR: the lifted form of one x86 instruction (the role VEX plays for
// angr in the paper).
//
// A Lifted instruction is a short SSA program over temps:
//   compute:  pure ops + loads, all reading the PRE-instruction machine
//             state (registers, flags, memory);
//   effects:  register/flag/memory writes applied atomically afterwards;
//   jump:     what the instruction does to control flow.
//
// Both the symbolic executor (sym/) and the concrete emulator (emu/)
// interpret this IR, so their semantics cannot drift apart — the property
// test "symbolic post-state == concrete execution" pins them together.
#pragma once

#include <vector>

#include "support/common.hpp"
#include "x86/inst.hpp"

namespace gp::ir {

enum class Flag : u8 { ZF = 0, SF, CF, OF, PF };
constexpr int kNumFlags = 5;
const char* flag_name(Flag f);

enum class IrOp : u8 {
  Const,    // imm
  GetReg,   // reg (always 64-bit read)
  GetFlag,  // flag (width 1)
  Load,     // [a], width bits
  Add, Sub, Mul, And, Or, Xor,
  Shl, LShr, AShr,
  Not, Neg,
  Eq, Ult, Slt,   // width 1 results
  Ite,            // a ? b : c
  ZExt, SExt,     // widen a to `width`
  Trunc,          // low `width` bits of a
};

using TempId = u16;
constexpr TempId kNoTemp = 0xffff;

/// One SSA computation; dst is the index of the temp being defined.
struct Compute {
  IrOp op = IrOp::Const;
  TempId dst = kNoTemp;
  u8 width = 64;
  TempId a = kNoTemp, b = kNoTemp, c = kNoTemp;
  u64 imm = 0;
  x86::Reg reg = x86::Reg::NONE;
  Flag flag = Flag::ZF;
};

enum class EffectKind : u8 { PutReg, PutFlag, Store };

struct Effect {
  EffectKind kind = EffectKind::PutReg;
  x86::Reg reg = x86::Reg::NONE;  // PutReg
  Flag flag = Flag::ZF;           // PutFlag
  TempId addr = kNoTemp;          // Store
  TempId value = kNoTemp;         // all
  u8 width = 64;                  // Store width
};

enum class JumpKind : u8 {
  Fall,        // no control transfer; next = addr + len
  Direct,      // unconditional, constant target
  Indirect,    // unconditional, computed target (includes ret)
  CondDirect,  // conditional, constant target, falls through otherwise
  Syscall,     // execution leaves the program (the attack goal)
};

struct Jump {
  JumpKind kind = JumpKind::Fall;
  u64 target = 0;        // Direct / CondDirect taken-target
  u64 fallthrough = 0;   // next sequential address
  TempId target_temp = kNoTemp;  // Indirect
  TempId cond = kNoTemp;         // CondDirect (width 1)
  /// True when the Indirect target was produced by a `ret`-style stack pop
  /// (used by gadget classification).
  bool is_ret = false;
  bool is_call = false;  // pushes a return address (direct or indirect call)
};

struct Lifted {
  std::vector<Compute> compute;
  std::vector<Effect> effects;
  Jump jump;
  u16 num_temps = 0;
};

}  // namespace gp::ir
