// Process-wide metrics registry: named counters, gauges and histograms for
// always-on, low-overhead pipeline accounting (HPCToolkit-style "measure
// everything, pay almost nothing").
//
// Where StageReport / ExtractStats / subsume::Stats are *per-session*
// accounting threaded through return values, the registry is the
// *process-wide* rollup: solver checks across every concurrent session,
// thread-pool steals across every stage, store I/O across every campaign
// job. Instrumentation sites cache a reference once and pay per event:
//
//   static metrics::Counter& c = metrics::registry().counter("solver.checks");
//   c.add();
//
// Cost model (the reason this can stay on in release builds):
//  - disabled (GP_METRICS=0): one relaxed atomic bool load + branch;
//  - enabled: one relaxed fetch_add on a thread-sharded cache line —
//    counters keep 16 cache-line-padded slots indexed by a thread-local id,
//    so concurrent lanes never contend on one line. value() sums the
//    shards; totals are exact (sum over threads == sequential run, the
//    tsan suite asserts it).
//
// GP_METRICS (default on; "0"/"false" disables) is resolved through
// gp::Config on first use; set_enabled() overrides it at runtime (CLI
// flags, benchmarks, tests).
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/common.hpp"

namespace gp::metrics {

/// Is collection on? Single relaxed load — the whole disabled fast path.
bool enabled();
/// Override the GP_METRICS knob at runtime (benchmarks flipping modes,
/// gp_pipeline flags, tests). Affects every instrumentation site at once.
void set_enabled(bool on);

namespace detail {
constexpr u32 kShards = 16;
/// Dense per-thread shard index in [0, kShards): spreads concurrent
/// increments across cache lines without any coordination.
u32 shard_id();
}  // namespace detail

/// Monotonic event count. Thread-sharded; exact under any interleaving.
class Counter {
 public:
  void add(u64 n = 1) {
    if (!enabled()) return;
    slots_[detail::shard_id()].v.fetch_add(n, std::memory_order_relaxed);
  }
  u64 value() const {
    u64 sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<u64> v{0};
  };
  std::array<Slot, detail::kShards> slots_;
};

/// Last-written level (pool sizes, in-flight sessions). set()/add() are
/// cheap enough for per-stage use; not sharded — gauges are written rarely.
class Gauge {
 public:
  void set(i64 v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(i64 d) {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  i64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

/// Power-of-two-bucketed distribution (bucket = bit width of the value) —
/// enough resolution for "how big are pools / how long are jobs" questions
/// without per-observation allocation.
class Histogram {
 public:
  void observe(u64 v);
  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum() const { return sum_.load(std::memory_order_relaxed); }
  u64 max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const u64 n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  /// Count of observations in the bucket for values of `bits` bit width
  /// (bits in [0, 64]; bucket 0 holds the value 0).
  u64 bucket(int bits) const {
    return buckets_[static_cast<size_t>(bits)].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::array<std::atomic<u64>, 65> buckets_{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> max_{0};
};

struct HistogramSummary {
  u64 count = 0;
  u64 sum = 0;
  u64 max = 0;
  double mean = 0;
};

/// Read-only copy of every instrument at one moment.
struct Snapshot {
  std::map<std::string, u64> counters;
  std::map<std::string, i64> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

/// Name -> instrument map. Registration (the name lookup) takes a mutex;
/// instrument references are stable for the process lifetime, so hot sites
/// resolve once into a function-local static and never lock again.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {"name": {"count":..,"sum":..,"max":..,"mean":..}}}.
  /// Names are json-escaped; zero-valued counters are kept (a zero is
  /// informative: the site was registered but never fired).
  std::string to_json() const;
  /// Zero every instrument (tests and benchmark reps). Instruments stay
  /// registered; cached references remain valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry (intentionally leaked: instrumentation sites
/// may fire from worker threads during late shutdown).
Registry& registry();

}  // namespace gp::metrics
