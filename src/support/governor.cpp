#include "support/governor.hpp"

#include "support/config.hpp"

namespace gp {

GovernorOptions GovernorOptions::from_env() {
  // Fresh parse (not the config() snapshot) so tests that setenv()
  // mid-process observe the change.
  return Config::from_env().governor;
}

}  // namespace gp
