#include "support/governor.hpp"

#include <cstdlib>

namespace gp {

namespace {

u64 env_u64(const char* name) {
  const char* s = std::getenv(name);
  if (!s || !*s) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || (end && *end)) return 0;  // unparsable: unlimited
  return static_cast<u64>(v);
}

}  // namespace

GovernorOptions GovernorOptions::from_env() {
  GovernorOptions o;
  o.deadline_seconds = static_cast<double>(env_u64("GP_DEADLINE_MS")) / 1e3;
  o.max_solver_checks = env_u64("GP_SOLVER_CHECKS");
  o.max_sym_steps = env_u64("GP_SYM_STEPS");
  o.max_expr_nodes = env_u64("GP_EXPR_NODES");
  return o;
}

}  // namespace gp
