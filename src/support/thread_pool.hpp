// Work-stealing thread pool shared by the gadget pipeline's parallel
// stages (extraction sharding, subsumption buckets).
//
// Design: N worker threads, each with its own deque. New tasks round-robin
// across the deques; a worker pops from the back of its own deque (LIFO,
// cache-warm) and steals from the front of a victim's (FIFO, oldest first).
// `run()` is the only user-facing entry point: it executes `items` work
// items with bounded parallelism, the calling thread participating as one
// of the lanes, and it rethrows the first exception any item raised.
//
// Thread-count policy (the GP_THREADS knob):
//  - env_threads() reads GP_THREADS, defaulting to hardware_concurrency;
//  - resolve(n) maps an options/parameter value (0 = "use the env knob")
//    to a concrete count;
//  - callers with a resolved count of 1 must take their sequential path and
//    never touch the pool — that is what restores the exact single-threaded
//    pipeline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.hpp"

namespace gp {

class ThreadPool {
 public:
  /// Spawns `workers` background threads (0 is valid: run() then executes
  /// everything on the calling thread).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Per-worker activity snapshot. `run` counts tasks popped from the
  /// worker's own deque, `stolen` counts tasks taken from a victim's,
  /// `sleeps` counts trips through the idle wait. The last row aggregates
  /// external callers (run() participants that are not pool threads).
  struct WorkerStats {
    u64 run = 0;
    u64 stolen = 0;
    u64 sleeps = 0;
  };
  std::vector<WorkerStats> worker_stats() const;

  /// Execute `fn(lane, item)` for every item in [0, items). At most
  /// `max_lanes` items run concurrently (the caller counts as one lane);
  /// lane ids are dense in [0, lanes) so callers can keep per-lane scratch
  /// state (e.g. a cloned solver context) without locking. Items are
  /// claimed dynamically from a shared counter, so uneven item costs
  /// balance automatically. Blocks until every item completed; rethrows
  /// the first exception thrown by any item.
  void run(u64 items, const std::function<void(int lane, u64 item)>& fn,
           int max_lanes);

  /// The GP_THREADS environment knob: a positive integer caps/raises the
  /// default parallelism; unset (or unparsable) means hardware_concurrency.
  static int env_threads();
  /// Resolve a per-call threads parameter: 0 -> env_threads(); otherwise
  /// clamped to >= 1.
  static int resolve(int threads);
  /// The process-wide pool. Sized generously (at least 3 workers even on
  /// small hosts) so explicit thread requests from tests keep real
  /// parallelism; an idle worker costs only a sleeping thread.
  static ThreadPool& shared();

 private:
  using Task = std::function<void()>;
  struct Queue {
    std::mutex m;
    std::deque<Task> q;
  };

  void submit(Task t);
  bool try_run_one(int self);
  void worker_loop(int idx);

  struct alignas(64) StatsCell {
    std::atomic<u64> run{0};
    std::atomic<u64> stolen{0};
    std::atomic<u64> sleeps{0};
  };

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<StatsCell>> stats_;  // workers + 1 (external)
  std::vector<std::thread> threads_;
  std::mutex sleep_m_;
  std::condition_variable wake_cv_;
  std::atomic<u64> pending_{0};
  std::atomic<u64> rr_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace gp
