#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/config.hpp"
#include "support/metrics.hpp"

namespace gp {

ThreadPool::ThreadPool(int workers) {
  workers = std::max(0, workers);
  for (int i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<Queue>());
  for (int i = 0; i < workers + 1; ++i)  // +1: external-caller row
    stats_.push_back(std::make_unique<StatsCell>());
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task t) {
  GP_CHECK(!queues_.empty(), "submit on a worker-less pool");
  const size_t idx = rr_.fetch_add(1) % queues_.size();
  {
    std::lock_guard<std::mutex> lk(queues_[idx]->m);
    queues_[idx]->q.push_back(std::move(t));
  }
  pending_.fetch_add(1);
  wake_cv_.notify_one();
}

/// Pop from our own deque's back; otherwise steal from the front of the
/// first non-empty victim. `self` is -1 for external (non-worker) callers,
/// who always steal.
bool ThreadPool::try_run_one(int self) {
  Task task;
  bool stolen = false;
  const int n = static_cast<int>(queues_.size());
  if (self >= 0) {
    std::lock_guard<std::mutex> lk(queues_[self]->m);
    if (!queues_[self]->q.empty()) {
      task = std::move(queues_[self]->q.back());
      queues_[self]->q.pop_back();
    }
  }
  if (!task) {
    for (int k = 0; k < n && !task; ++k) {
      const int victim = (self >= 0 ? self + 1 + k : k) % n;
      if (victim == self) continue;
      std::lock_guard<std::mutex> lk(queues_[victim]->m);
      if (!queues_[victim]->q.empty()) {
        task = std::move(queues_[victim]->q.front());
        queues_[victim]->q.pop_front();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1);
  StatsCell& cell =
      *stats_[self >= 0 ? static_cast<size_t>(self) : stats_.size() - 1];
  (stolen ? cell.stolen : cell.run).fetch_add(1, std::memory_order_relaxed);
  {
    static metrics::Counter& tasks =
        metrics::registry().counter("pool.tasks");
    static metrics::Counter& steals =
        metrics::registry().counter("pool.steals");
    tasks.add();
    if (stolen) steals.add();
  }
  task();
  return true;
}

void ThreadPool::worker_loop(int idx) {
  while (true) {
    if (try_run_one(idx)) continue;
    stats_[static_cast<size_t>(idx)]->sleeps.fetch_add(
        1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(sleep_m_);
    wake_cv_.wait(lk, [this] {
      return stop_.load() || pending_.load() > 0;
    });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

void ThreadPool::run(u64 items,
                     const std::function<void(int lane, u64 item)>& fn,
                     int max_lanes) {
  if (items == 0) return;
  max_lanes = std::max(1, max_lanes);

  struct RunState {
    std::atomic<u64> next{0};
    std::atomic<int> lanes_left{0};
    std::atomic<int> next_lane{0};
    std::mutex m;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto rs = std::make_shared<RunState>();
  const int lanes = static_cast<int>(std::min<u64>(
      items,
      static_cast<u64>(std::min(max_lanes, workers() + 1))));
  rs->lanes_left.store(lanes);

  auto lane_body = [rs, &fn, items] {
    const int lane = rs->next_lane.fetch_add(1);
    for (u64 i; (i = rs->next.fetch_add(1)) < items;) {
      try {
        fn(lane, i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(rs->m);
        if (!rs->error) rs->error = std::current_exception();
        // Drain the remaining items: a failed run still has to join.
        rs->next.store(items);
      }
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lk(rs->m);
      last = rs->lanes_left.fetch_sub(1) == 1;
    }
    if (last) rs->done.notify_all();
  };

  for (int i = 1; i < lanes; ++i) submit(lane_body);
  lane_body();  // the caller is a lane too

  // Help drain queued tasks (ours or another run's) while waiting, so a
  // run() issued from inside a pool task can never deadlock the pool.
  while (rs->lanes_left.load() > 0)
    if (!try_run_one(-1)) break;
  {
    std::unique_lock<std::mutex> lk(rs->m);
    rs->done.wait(lk, [&] { return rs->lanes_left.load() == 0; });
  }
  if (rs->error) std::rethrow_exception(rs->error);
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(stats_.size());
  for (const auto& cell : stats_)
    out.push_back({cell->run.load(std::memory_order_relaxed),
                   cell->stolen.load(std::memory_order_relaxed),
                   cell->sleeps.load(std::memory_order_relaxed)});
  return out;
}

int ThreadPool::env_threads() {
  // Fresh parse so tests that setenv("GP_THREADS") observe the change;
  // Config::from_env already applied the clamp and hardware fallback.
  return Config::from_env().threads;
}

int ThreadPool::resolve(int threads) {
  if (threads <= 0) return env_threads();
  return std::min(threads, 512);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(3, env_threads() - 1));
  return pool;
}

}  // namespace gp
