#include "support/fault.hpp"

#include <mutex>

#include "support/config.hpp"

namespace gp::fault {

namespace {

constexpr size_t kPoints = static_cast<size_t>(Point::kCount);

struct State {
  std::atomic<bool> enabled{false};
  // Rates are only written under configure() (callers synchronize runs and
  // configuration); thresholds are pre-scaled to u64 so the hot path is an
  // integer compare.
  std::array<std::atomic<u64>, kPoints> thresholds{};
  std::array<std::atomic<u64>, kPoints> counters{};
  std::atomic<u64> seed{1};
};

State& state() {
  static State s;
  return s;
}

/// splitmix64: decision = hash(seed, point, ordinal) scaled to [0, 2^64).
u64 mix(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

u64 rate_to_threshold(double rate) {
  if (rate <= 0) return 0;
  if (rate >= 1) return ~u64{0};
  return static_cast<u64>(rate * 18446744073709551615.0);
}

}  // namespace

const char* point_name(Point p) {
  switch (p) {
    case Point::Decode: return "decode";
    case Point::Solver: return "solver";
    case Point::Emu: return "emu";
    case Point::Alloc: return "alloc";
    case Point::ShortWrite: return "write";
    case Point::ReadCorrupt: return "read";
    case Point::RenameFail: return "rename";
    case Point::Accept: return "accept";
    case Point::SockRead: return "sock_read";
    case Point::SockWrite: return "sock_write";
    case Point::JournalAppend: return "journal_append";
    case Point::JournalReplay: return "journal_replay";
    case Point::JobCrash: return "job_crash";
    case Point::kCount: break;
  }
  return "<bad>";
}

std::string valid_point_names() {
  std::string out;
  for (size_t i = 0; i < kPoints; ++i) {
    if (i) out += ", ";
    out += point_name(static_cast<Point>(i));
  }
  return out;
}

Result<Spec> parse_spec(const std::string& text) {
  Spec spec;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos)
      return Status::internal("GP_FAULT item missing '=': " + item);
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    char* end = nullptr;
    if (key == "seed") {
      spec.seed = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end)
        return Status::internal("GP_FAULT bad seed: " + val);
      continue;
    }
    const double rate = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end || rate < 0 || rate > 1)
      return Status::internal("GP_FAULT bad rate for " + key + ": " + val);
    bool matched = false;
    for (size_t i = 0; i < kPoints; ++i) {
      if (key == point_name(static_cast<Point>(i))) {
        spec.rates[i] = rate;
        matched = true;
        break;
      }
    }
    if (!matched)
      return Status::internal("GP_FAULT unknown point '" + key +
                              "' (valid points: " + valid_point_names() +
                              ")");
  }
  return spec;
}

void configure(const Spec& spec) {
  State& s = state();
  // Publish rates before flipping enabled so a concurrent should_fire never
  // mixes old thresholds with the new flag.
  s.seed.store(spec.seed, std::memory_order_relaxed);
  for (size_t i = 0; i < kPoints; ++i) {
    s.thresholds[i].store(rate_to_threshold(spec.rates[i]),
                          std::memory_order_relaxed);
    s.counters[i].store(0, std::memory_order_relaxed);
  }
  s.enabled.store(spec.any(), std::memory_order_release);
}

void disable() { configure(Spec{}); }

void configure_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string& spec = gp::config().fault_spec;
    if (spec.empty()) return;
    auto parsed = parse_spec(spec);
    if (!parsed.ok()) fail(parsed.status().to_string());
    configure(parsed.value());
  });
}

bool enabled() {
  return state().enabled.load(std::memory_order_acquire);
}

bool should_fire(Point point) {
  State& s = state();
  if (!s.enabled.load(std::memory_order_acquire)) return false;
  const size_t i = static_cast<size_t>(point);
  const u64 threshold = s.thresholds[i].load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  const u64 trial = s.counters[i].fetch_add(1, std::memory_order_relaxed);
  const u64 seed = s.seed.load(std::memory_order_relaxed);
  const u64 draw = mix(seed ^ mix(static_cast<u64>(i) << 32 ^ trial));
  return draw < threshold;
}

u64 trials(Point point) {
  return state()
      .counters[static_cast<size_t>(point)]
      .load(std::memory_order_relaxed);
}

}  // namespace gp::fault
