#include "support/signal.hpp"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace gp::sig {

namespace {

std::atomic<bool> g_drain{false};
// Self-pipe: [0] read end handed to pollers, [1] written by the handler.
int g_pipe[2] = {-1, -1};

void on_drain_signal(int /*signo*/) {
  g_drain.store(true, std::memory_order_release);
  if (g_pipe[1] >= 0) {
    const char b = 1;
    // Best effort: a full pipe still leaves earlier bytes readable.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &b, 1);
  }
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void install_drain_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (::pipe(g_pipe) != 0) g_pipe[0] = g_pipe[1] = -1;
    struct sigaction sa{};
    sa.sa_handler = on_drain_signal;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;  // slow reads keep blocking; pollers use the fd
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
  });
}

bool drain_requested() { return g_drain.load(std::memory_order_acquire); }

int drain_wakeup_fd() { return g_pipe[0]; }

void reset_drain_for_test() { g_drain.store(false, std::memory_order_release); }

}  // namespace gp::sig
