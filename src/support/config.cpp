#include "support/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <thread>

namespace gp {

namespace {

const char* env_str(const char* name) {
  const char* s = std::getenv(name);
  return s ? s : "";
}

bool env_flag(const char* name) { return std::getenv(name) != nullptr; }

/// Tri-state boolean knob: unset keeps the default; "0"/"false"/"off"
/// (case-insensitive) and the empty string mean false; anything else true.
/// Needed for knobs that default ON (GP_METRICS=0 must actually disable).
bool env_bool(const char* name, bool dflt) {
  const char* s = std::getenv(name);
  if (!s) return dflt;
  std::string v(s);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  return !(v.empty() || v == "0" || v == "false" || v == "off");
}

/// Unsigned knob; unset or unparsable means 0 ("unlimited").
u64 env_u64(const char* name) {
  const char* s = std::getenv(name);
  if (!s || !*s) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || (end && *end)) return 0;
  return static_cast<u64>(v);
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

}  // namespace

Config Config::from_env() {
  Config c;

  // GP_THREADS: positive values clamp to 512; anything else falls back to
  // the hardware count (the pre-Config ThreadPool::env_threads contract).
  c.threads = hardware_threads();
  if (const char* s = std::getenv("GP_THREADS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1) c.threads = static_cast<int>(std::min<long>(v, 512));
  }

  c.governor.deadline_seconds =
      static_cast<double>(env_u64("GP_DEADLINE_MS")) / 1e3;
  c.governor.max_solver_checks = env_u64("GP_SOLVER_CHECKS");
  c.governor.max_sym_steps = env_u64("GP_SYM_STEPS");
  c.governor.max_expr_nodes = env_u64("GP_EXPR_NODES");

  if (const char* s = std::getenv("GP_RETRIES")) {
    char* end = nullptr;
    const long n = std::strtol(s, &end, 10);
    if (end && end != s && *end == '\0' && n >= 0)
      c.max_retries = static_cast<int>(n);
  }

  c.store_dir = env_str("GP_STORE_DIR");
  c.fault_spec = env_str("GP_FAULT");

  c.debug_plan = env_flag("GP_DEBUG_PLAN");
  c.debug_conc = env_flag("GP_DEBUG_CONC");
  c.debug_conc2 = env_flag("GP_DEBUG_CONC2");
  c.debug_val = env_flag("GP_DEBUG_VAL");
  c.bench_full = env_flag("GP_BENCH_FULL");

  // GP_OPT_LEVEL rejects out-of-range values instead of clamping: a level
  // that silently degraded to 0 would invalidate every size/gadget
  // measurement made under it.
  if (const char* s = std::getenv("GP_OPT_LEVEL")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 0 || v > 2)
      throw Error("invalid GP_OPT_LEVEL '" + std::string(s) +
                  "' (valid levels: 0, 1, 2)");
    c.opt_level = static_cast<int>(v);
  }

  c.plan_index = env_bool("GP_PLAN_INDEX", true);

  c.metrics = env_bool("GP_METRICS", true);
  c.trace = env_bool("GP_TRACE", false);
  if (const u64 buf = env_u64("GP_TRACE_BUF"))
    c.trace_buf = static_cast<u32>(
        std::min<u64>(std::max<u64>(buf, 64), u64{1} << 22));

  c.serve_sock = env_str("GP_SERVE_SOCK");
  if (const u64 q = env_u64("GP_SERVE_QUEUE"))
    c.serve_queue = static_cast<int>(std::min<u64>(q, u64{1} << 20));
  if (const u64 a = env_u64("GP_SERVE_MAX_ACTIVE"))
    c.serve_max_active = static_cast<int>(std::min<u64>(a, 256));
  if (const u64 p = env_u64("GP_SERVE_POISON_RETRIES"))
    c.serve_poison_retries = static_cast<int>(std::min<u64>(p, 100));
  if (const char* s = std::getenv("GP_SERVE_WATCHDOG_MS")) {
    char* end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (end != s && *end == '\0' && v >= 0)
      c.serve_watchdog_ms =
          static_cast<int>(std::min<long long>(v, 3'600'000));
  }

  return c;
}

const Config& config() {
  static const Config snapshot = Config::from_env();
  return snapshot;
}

}  // namespace gp
