// Deterministic, seed-driven fault injection for the pipeline-under-fault
// test suite (and for manual chaos runs via the GP_FAULT env var).
//
// Each instrumented site names a fault Point; should_fire(point) draws a
// deterministic pseudo-random decision from (seed, point, per-point trial
// ordinal). The trial counters are atomic, so the set of firing ordinals is
// a pure function of the spec — sequential runs are exactly reproducible,
// and parallel runs fire the same *number* of faults per point even when
// lane interleaving varies.
//
// Spec grammar (comma-separated key=value):
//   seed=<u64>        decision seed (default 1)
//   decode=<rate>     x86::decode returns nullopt           (forced decode failure)
//   solver=<rate>     solver::Solver query returns Unknown  (solver timeout)
//   emu=<rate>        emu::Emulator::step traps             (emulated crash)
//   alloc=<rate>      expression interning throws           (allocation failure)
//   write=<rate>      atomic file write persists a prefix   (torn write)
//   read=<rate>       file read flips one bit               (media corruption)
//   rename=<rate>     checkpoint publish rename fails       (full disk / EIO)
//   accept=<rate>     gp_serve drops an accepted connection (accept() EMFILE)
//   sock_read=<rate>  socket frame read fails               (connection reset)
//   sock_write=<rate> socket frame write fails              (peer gone / EPIPE)
//   journal_append=<rate>  gp_serve job-journal append is torn (crash mid-append)
//   journal_replay=<rate>  journal replay treats a record as corrupt (end-of-log)
//   job_crash=<rate>  gp_serve worker aborts the process at job start
//                     (the pathological-image crash the quarantine absorbs)
// with <rate> a probability in [0, 1], e.g.
//   GP_FAULT="seed=42,decode=0.01,solver=0.05,alloc=0.001"
// Unknown keys are rejected with an error that lists the valid points.
//
// When no spec is active, every should_fire() call is a single relaxed
// atomic load — cheap enough to leave the hooks in release builds.
#pragma once

#include <array>
#include <atomic>
#include <string>

#include "support/status.hpp"

namespace gp::fault {

enum class Point : u8 {
  Decode = 0,    // x86 decoder rejects the bytes
  Solver,        // constraint query returns Unknown
  Emu,           // emulator traps (validation fails, chain dropped)
  Alloc,         // expression-node allocation fails
  ShortWrite,    // serial::write_file_atomic persists only a prefix
  ReadCorrupt,   // serial::read_file flips one deterministic bit
  RenameFail,    // checkpoint publish (temp-file rename) fails
  Accept,        // serve: accepted connection is dropped immediately
  SockRead,      // serve: socket frame read fails (connection reset)
  SockWrite,     // serve: socket frame write fails (peer gone / EPIPE)
  JournalAppend, // serve: job-journal append persists only a prefix
  JournalReplay, // serve: journal replay reads a record as corrupt
  JobCrash,      // serve: worker std::abort()s right after the start record
  kCount,
};
/// The point's GP_FAULT spec key ("decode", "write", ...).
const char* point_name(Point p);
/// Comma-separated list of every valid spec key (for error messages).
std::string valid_point_names();

struct Spec {
  u64 seed = 1;
  std::array<double, static_cast<size_t>(Point::kCount)> rates{};  // all 0

  bool any() const {
    for (const double r : rates)
      if (r > 0) return true;
    return false;
  }
  double rate(Point p) const { return rates[static_cast<size_t>(p)]; }
};

/// Parse a GP_FAULT-style spec string. Unknown keys, bad numbers or rates
/// outside [0, 1] are errors (a chaos run with a silently-ignored typo'd
/// rate would report fake robustness).
Result<Spec> parse_spec(const std::string& text);

/// Install `spec` process-wide (replacing any active spec) and reset the
/// per-point trial counters. Passing a default Spec disables injection.
void configure(const Spec& spec);
/// Disable injection (equivalent to configure({})).
void disable();
/// Load GP_FAULT from the environment if set; malformed specs fail fast
/// with gp::Error (a chaos run must not silently run un-chaosed). Called
/// once by core::GadgetPlanner; safe to call repeatedly.
void configure_from_env();

/// Is any fault point active? Single relaxed load.
bool enabled();

/// Should the fault at `point` fire for this trial? Deterministic in
/// (seed, point, trial ordinal). Always false when disabled.
bool should_fire(Point point);

/// Trials drawn at `point` since the last configure() (test introspection).
u64 trials(Point point);

/// RAII spec installer for tests: configures on construction, restores
/// disabled state on destruction.
class ScopedSpec {
 public:
  explicit ScopedSpec(const Spec& spec) { configure(spec); }
  explicit ScopedSpec(const std::string& text) {
    configure(parse_spec(text).value());
  }
  ~ScopedSpec() { disable(); }
  ScopedSpec(const ScopedSpec&) = delete;
  ScopedSpec& operator=(const ScopedSpec&) = delete;
};

}  // namespace gp::fault
