#include "support/metrics.hpp"

#include <bit>

#include "support/config.hpp"
#include "support/str.hpp"

namespace gp::metrics {

namespace {

std::atomic<bool>& enabled_flag() {
  // First use resolves GP_METRICS through the single gp::Config parse
  // point; set_enabled() overwrites afterwards.
  static std::atomic<bool> flag{Config::from_env().metrics};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_seq_cst);
}

namespace detail {

u32 shard_id() {
  static std::atomic<u32> next{0};
  thread_local const u32 id =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return id;
}

}  // namespace detail

void Histogram::observe(u64 v) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(std::bit_width(v))].fetch_add(
      1, std::memory_order_relaxed);
  u64 cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    s.histograms[name] = {h->count(), h->sum(), h->max(), h->mean()};
  return s;
}

std::string Registry::to_json() const {
  const Snapshot s = snapshot();
  std::string j = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) j += ", ";
    first = false;
    j += "\"" + json_escape(name) + "\": " + std::to_string(v);
  }
  j += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) j += ", ";
    first = false;
    j += "\"" + json_escape(name) + "\": " + std::to_string(v);
  }
  j += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) j += ", ";
    first = false;
    char mean[40];
    std::snprintf(mean, sizeof mean, "%.2f", h.mean);
    j += "\"" + json_escape(name) + "\": {\"count\": " +
         std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
         ", \"max\": " + std::to_string(h.max) + ", \"mean\": " + mean + "}";
  }
  j += "}}";
  return j;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: see header
  return *r;
}

}  // namespace gp::metrics
