// Small string-formatting helpers (GCC 12 lacks <format>).
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace gp {

inline std::string hex(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

inline std::string hex_byte(u8 v) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "%02x", v);
  return buf;
}

template <typename T>
std::string to_str(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Join a range of strings with a separator.
inline std::string join(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

inline bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// Escape a string for embedding in a JSON string literal: quotes and
/// backslashes are backslash-escaped, control characters become \n/\r/\t
/// or \u00XX. Shared by the campaign summary, the metrics registry and the
/// trace exporter — program/obfuscation/goal names are attacker-ish inputs
/// (a goal named `pwn"]}` must not break the summary).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace gp
