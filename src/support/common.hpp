// Common scalar aliases and error handling used across the Gadget-Planner
// reproduction. Fatal internal errors throw gp::Error; expected failures use
// std::optional / status returns at the API boundary.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace gp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Exception type for unrecoverable internal errors (broken invariants,
/// malformed inputs the caller promised were well-formed).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

/// GP_CHECK(cond, msg): invariant check that stays on in release builds.
#define GP_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) ::gp::fail(std::string("check failed: ") + (msg));          \
  } while (false)

/// Truncate a value to `bits` bits (1..64).
constexpr u64 truncate(u64 v, unsigned bits) {
  return bits >= 64 ? v : (v & ((u64{1} << bits) - 1));
}

/// Sign-extend the low `bits` bits of v to 64 bits.
constexpr u64 sign_extend(u64 v, unsigned bits) {
  if (bits >= 64) return v;
  const u64 m = u64{1} << (bits - 1);
  v = truncate(v, bits);
  return (v ^ m) - m;
}

}  // namespace gp
