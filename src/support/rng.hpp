// Deterministic xoshiro256** RNG. All randomized components (corpus
// generation, obfuscation junk code, property tests) seed from this so every
// experiment in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include "support/common.hpp"

namespace gp {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  u64 below(u64 n) {
    GP_CHECK(n > 0, "Rng::below(0)");
    return next() % n;
  }

  /// Uniform in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    GP_CHECK(lo <= hi, "Rng::range bounds");
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
  }

  bool chance(double p) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4];
};

}  // namespace gp
