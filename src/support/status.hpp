// Error taxonomy for the pipeline's long-running stages. Resource
// exhaustion (deadline, cancellation, counted budgets, injected faults) is
// an expected *result* of analyzing obfuscated binaries, not an internal
// error: every stage records a Status instead of throwing, and degraded
// output (a partial gadget pool, an inconclusive subsumption check, a
// best-so-far chain list) stays usable.
//
// gp::Error (support/common.hpp) remains the channel for broken invariants;
// ResourceExhausted below is an internal control-flow exception that deep
// allocation/step sites raise and stage boundaries convert to a Status —
// it must never escape a public stage API.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "support/common.hpp"

namespace gp {

enum class StatusCode : u8 {
  Ok = 0,
  DeadlineExceeded,  // shared wall-clock deadline passed
  Cancelled,         // CancelToken fired (caller gave up)
  BudgetExhausted,   // a counted budget (solver checks, sym steps, nodes) hit 0
  FaultInjected,     // a GP_FAULT injection point fired
  Internal,          // converted gp::Error (should not happen in steady state)
};

const char* status_code_name(StatusCode c);

/// Cheap value-type status: Ok statuses carry no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;  // Ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status deadline_exceeded(std::string msg) {
    return {StatusCode::DeadlineExceeded, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {StatusCode::Cancelled, std::move(msg)};
  }
  static Status budget_exhausted(std::string msg) {
    return {StatusCode::BudgetExhausted, std::move(msg)};
  }
  static Status fault_injected(std::string msg) {
    return {StatusCode::FaultInjected, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::Internal, std::move(msg)};
  }

  bool ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    std::string s = status_code_name(code_);
    if (!message_.empty()) s += ": " + message_;
    return s;
  }

  /// Merge for aggregated stats blocks: the first non-Ok status wins (a
  /// stage that degraded in any lane reports as degraded).
  Status& merge(const Status& other) {
    if (ok() && !other.ok()) *this = other;
    return *this;
  }

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

/// Value-or-status return type for APIs whose failure is expected and
/// data-free (e.g. parsing a GP_FAULT spec).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    GP_CHECK(!status_.ok(), "Result constructed from an Ok status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  const T& value() const {
    GP_CHECK(ok(), "Result::value() on error: " + status_.to_string());
    return *value_;
  }
  T& value() {
    GP_CHECK(ok(), "Result::value() on error: " + status_.to_string());
    return *value_;
  }
  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Internal control-flow exception for exhaustion raised deep inside
/// expression interning or symbolic stepping, where a status return cannot
/// be threaded through. Stage boundaries (extractor offset loop, subsume
/// bucket winnow, concretize, planner round) catch it and record the
/// Status; it never crosses a public API.
class ResourceExhausted {
 public:
  explicit ResourceExhausted(Status status) : status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::Ok: return "ok";
    case StatusCode::DeadlineExceeded: return "deadline-exceeded";
    case StatusCode::Cancelled: return "cancelled";
    case StatusCode::BudgetExhausted: return "budget-exhausted";
    case StatusCode::FaultInjected: return "fault-injected";
    case StatusCode::Internal: return "internal";
  }
  return "<bad>";
}

}  // namespace gp
