// Serialization primitives for the artifact store: a little-endian byte
// Writer/Reader pair, CRC32, length+CRC record framing, and torn-write-safe
// file I/O (temp file + rename discipline).
//
// Design rules the store depends on:
//  - Encoding is fixed-width little-endian: the byte stream for a given
//    value sequence is identical across runs, processes and thread counts
//    (checkpoint keys and the kill-resume determinism test hash these
//    bytes).
//  - The Reader never throws and never reads out of bounds: any overrun or
//    malformed length sets a sticky failure flag and subsequent reads
//    return zeros. Callers check ok() once at the end — a truncated or
//    bit-flipped input degrades to "artifact missing", never to UB.
//  - write_file_atomic() makes a torn write indistinguishable from a
//    missing file: bytes go to a temp name in the same directory and are
//    renamed over the target only after a successful full write, so a
//    crash mid-write leaves the target untouched.
//
// Fault injection (support/fault): ShortWrite truncates the written bytes,
// RenameFail fails the publish step, ReadCorrupt flips one deterministic
// bit in a read_file() result — the chaos harness uses these to prove the
// store's CRC/manifest actually catch real-world torn writes and media
// corruption.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace gp::serial {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected).
/// crc32("123456789") == 0xCBF43926.
u32 crc32(std::span<const u8> bytes);

/// Append-only little-endian encoder.
class Writer {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_le(v, 2); }
  void put_u32(u32 v) { put_le(v, 4); }
  void put_u64(u64 v) { put_le(v, 8); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v), 8); }
  void put_f64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, 8);
    put_u64(bits);
  }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Length-prefixed byte block.
  void put_bytes(std::span<const u8> b) {
    put_u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void put_str(const std::string& s) {
    put_bytes({reinterpret_cast<const u8*>(s.data()), s.size()});
  }
  /// Raw append, no length prefix (for framing headers).
  void put_raw(std::span<const u8> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void put_le(u64 v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  std::vector<u8> buf_;
};

/// Bounds-checked little-endian decoder with a sticky failure flag.
class Reader {
 public:
  explicit Reader(std::span<const u8> bytes) : bytes_(bytes) {}

  u8 get_u8() { return static_cast<u8>(get_le(1)); }
  u16 get_u16() { return static_cast<u16>(get_le(2)); }
  u32 get_u32() { return static_cast<u32>(get_le(4)); }
  u64 get_u64() { return get_le(8); }
  i64 get_i64() { return static_cast<i64>(get_le(8)); }
  double get_f64() {
    const u64 bits = get_u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  bool get_bool() { return get_u8() != 0; }
  /// Length-prefixed block; a length that exceeds the remaining input is a
  /// failure (never a huge allocation from corrupted length bytes).
  std::span<const u8> get_bytes() {
    const u64 n = get_u64();
    if (failed_ || n > remaining()) {
      failed_ = true;
      return {};
    }
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string get_str() {
    auto b = get_bytes();
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }
  std::span<const u8> get_raw(size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      return {};
    }
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }
  bool ok() const { return !failed_; }
  /// Force the stream into the failed state (semantic validation errors).
  void set_failed() { failed_ = true; }

 private:
  u64 get_le(int n) {
    if (failed_ || static_cast<size_t>(n) > remaining()) {
      failed_ = true;
      return 0;
    }
    u64 v = 0;
    for (int i = 0; i < n; ++i) v |= u64{bytes_[pos_ + i]} << (8 * i);
    pos_ += n;
    return v;
  }

  std::span<const u8> bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// -- record framing ---------------------------------------------------------
// A record is [u32 payload_len][u32 crc32(payload)][payload]. Artifacts are
// a sequence of records, so a single flipped bit anywhere in a record is
// caught by that record's CRC and a truncation is caught by the length
// bounds check.

void put_record(Writer& w, std::span<const u8> payload);
/// Read and CRC-verify one record; nullopt (and Reader failure) on a short,
/// oversized or corrupted record.
std::optional<std::vector<u8>> get_record(Reader& r);

// -- file I/O ----------------------------------------------------------------

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// flush, then rename over the target. On any failure (including injected
/// ShortWrite/RenameFail faults) the temp file is removed and the previous
/// target content, if any, is left intact.
Status write_file_atomic(const std::string& path, std::span<const u8> bytes);

/// Read a whole file; a non-Ok status for a missing/unreadable file. The
/// injected ReadCorrupt fault flips one deterministic bit of the result.
Result<std::vector<u8>> read_file(const std::string& path);

/// FNV-1a 64-bit over a byte span, for content-hash keys. Stable across
/// platforms (unlike std::hash).
u64 fnv1a(std::span<const u8> bytes, u64 seed = 0xcbf29ce484222325ULL);

}  // namespace gp::serial
