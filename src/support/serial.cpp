#include "support/serial.hpp"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/fault.hpp"

namespace gp::serial {

namespace {

std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

std::string temp_name(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

}  // namespace

u32 crc32(std::span<const u8> bytes) {
  static const std::array<u32, 256> table = make_crc_table();
  u32 c = 0xFFFFFFFFu;
  for (const u8 b : bytes) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

u64 fnv1a(std::span<const u8> bytes, u64 seed) {
  u64 h = seed;
  for (const u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_record(Writer& w, std::span<const u8> payload) {
  w.put_u32(static_cast<u32>(payload.size()));
  w.put_u32(crc32(payload));
  w.put_raw(payload);
}

std::optional<std::vector<u8>> get_record(Reader& r) {
  const u32 len = r.get_u32();
  const u32 crc = r.get_u32();
  auto payload = r.get_raw(len);
  if (!r.ok()) return std::nullopt;
  if (crc32(payload) != crc) {
    r.set_failed();
    return std::nullopt;
  }
  return std::vector<u8>(payload.begin(), payload.end());
}

Status write_file_atomic(const std::string& path,
                         std::span<const u8> bytes) {
  const std::string tmp = temp_name(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f)
    return Status::internal("open failed: " + tmp + ": " +
                            std::strerror(errno));

  size_t to_write = bytes.size();
  // Injected torn write: persist only a prefix, then publish it anyway —
  // the store must detect the damage by CRC/length, not by luck.
  const bool torn =
      fault::enabled() && fault::should_fire(fault::Point::ShortWrite);
  if (torn) to_write /= 2;

  const size_t written =
      to_write ? std::fwrite(bytes.data(), 1, to_write, f) : 0;
  const bool write_ok = written == to_write;
  const bool flush_ok = std::fflush(f) == 0;
  std::fclose(f);
  if (!write_ok || !flush_ok) {
    std::remove(tmp.c_str());
    return Status::internal("short write: " + tmp);
  }

  if (fault::enabled() && fault::should_fire(fault::Point::RenameFail)) {
    std::remove(tmp.c_str());
    return Status::fault_injected("injected rename failure: " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::internal("rename failed: " + path + ": " +
                            std::strerror(errno));
  }
  return {};
}

Result<std::vector<u8>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    return Status::internal("open failed: " + path + ": " +
                            std::strerror(errno));
  std::vector<u8> out;
  std::array<u8, 64 * 1024> chunk;
  size_t n;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
    out.insert(out.end(), chunk.begin(), chunk.begin() + n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::internal("read failed: " + path);

  if (!out.empty() && fault::enabled() &&
      fault::should_fire(fault::Point::ReadCorrupt)) {
    // Deterministic single-bit flip at a position derived from the content
    // length (no RNG: chaos runs must replay exactly).
    const size_t bit = (out.size() * 8 * 5 / 7 + 3) % (out.size() * 8);
    out[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
  }
  return out;
}

}  // namespace gp::serial
