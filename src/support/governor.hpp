// Shared resource governor for the pipeline's long-running stages
// (extract -> lift -> symbolic summarize -> SMT subsume -> plan ->
// concretize -> emulate).
//
// Obfuscated inputs make every one of those stages pathological in its own
// way — virtualized dispatch blows up symbolic summaries, flattened control
// flow blows up SAT queries — so each stage historically grew a private
// knob (solver conflict budgets, subsumption check caps, the planner's time
// budget). The Governor unifies them:
//
//   - Deadline: one wall-clock deadline shared by every stage; workers on
//     thread-pool lanes poll the same deadline, so a pipeline with a 30 s
//     budget stops in ~milliseconds of that mark no matter which stage it
//     is in.
//   - CancelToken: cooperative cancellation; cancel() from any thread is
//     observed by every polling loop, including thread-pool workers.
//   - Counted budgets: solver checks (bit-blasting queries), symbolic
//     execution steps, and expression-node allocations. Budgets are atomic,
//     so parallel lanes split one budget without coordination.
//
// Exhaustion is a *result*, not a crash: stages observe a non-Ok poll() and
// degrade (partial pool + skip accounting, structural-only subsumption,
// best-so-far chains) while recording the Status of what was cut.
//
// All methods are thread-safe; a Governor is shared by reference across
// stages and worker lanes and must outlive them.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "support/status.hpp"

namespace gp {

/// Cooperative cancellation flag. Copyable; copies share the flag.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Wall-clock deadline; default-constructed = never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;
  static Deadline never() { return {}; }
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }
  static Deadline at(Clock::time_point tp) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = tp;
    return d;
  }

  bool unlimited() const { return unlimited_; }
  bool expired() const { return !unlimited_ && Clock::now() > at_; }
  Clock::time_point time_point() const { return at_; }
  /// Seconds until expiry; +inf when unlimited, exactly 0 once expired.
  /// Clamped so downstream arithmetic (backoff budgets, deadline splits)
  /// can never be driven negative by an already-expired deadline.
  double remaining_seconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    return std::max(
        0.0, std::chrono::duration<double>(at_ - Clock::now()).count());
  }
  /// The earlier of two deadlines.
  static Deadline earlier(const Deadline& a, const Deadline& b) {
    if (a.unlimited_) return b;
    if (b.unlimited_) return a;
    return a.at_ < b.at_ ? a : b;
  }

 private:
  bool unlimited_ = true;
  Clock::time_point at_{};
};

/// Atomic counted budget; lanes consume units concurrently. limit 0 means
/// unlimited (the common "no governor configured" fast path never touches
/// the counter's contended cache line beyond one relaxed add).
class Budget {
 public:
  explicit Budget(u64 limit = 0) : limit_(limit) {}

  bool unlimited() const { return limit_ == 0; }
  /// Claim `n` units. Returns false (consuming nothing) once fewer than `n`
  /// remain; callers then degrade.
  bool try_consume(u64 n = 1) {
    if (unlimited()) return true;
    u64 cur = used_.load(std::memory_order_relaxed);
    while (cur + n <= limit_) {
      if (used_.compare_exchange_weak(cur, cur + n,
                                      std::memory_order_relaxed))
        return true;
    }
    return false;
  }
  bool exhausted() const {
    return !unlimited() && used_.load(std::memory_order_relaxed) >= limit_;
  }
  u64 used() const { return used_.load(std::memory_order_relaxed); }
  u64 limit() const { return limit_; }

 private:
  std::atomic<u64> used_{0};
  u64 limit_;
};

/// Knob block for constructing a Governor (and for core::PipelineOptions).
/// Zero values mean "unlimited" so a default-constructed block is a no-op
/// governor.
struct GovernorOptions {
  double deadline_seconds = 0;  // <= 0: no deadline
  u64 max_solver_checks = 0;    // bit-blasting queries across all stages
  u64 max_sym_steps = 0;        // symbolic executor instruction steps
  u64 max_expr_nodes = 0;       // freshly interned expression DAG nodes

  bool any_limit() const {
    return deadline_seconds > 0 || max_solver_checks > 0 ||
           max_sym_steps > 0 || max_expr_nodes > 0;
  }

  /// Environment knobs: GP_DEADLINE_MS, GP_SOLVER_CHECKS, GP_SYM_STEPS,
  /// GP_EXPR_NODES (unset/unparsable entries stay unlimited).
  static GovernorOptions from_env();

  /// Copy with every counted budget divided across `n` concurrent
  /// consumers (each share at least 1 so a tiny budget can never round to
  /// 0 = "unlimited"). The deadline is shared, not split: concurrent
  /// sessions race one wall clock. This is how an engine-level budget is
  /// carved into per-session governors.
  GovernorOptions split_across(int n) const {
    if (n <= 1) return *this;
    auto share = [n](u64 v) -> u64 {
      return v == 0 ? 0 : std::max<u64>(1, v / static_cast<u64>(n));
    };
    GovernorOptions o = *this;
    o.max_solver_checks = share(max_solver_checks);
    o.max_sym_steps = share(max_sym_steps);
    o.max_expr_nodes = share(max_expr_nodes);
    return o;
  }

  /// Copy with every counted budget multiplied by `factor` (saturating;
  /// unlimited stays unlimited). The deadline is NOT scaled — wall-clock
  /// budgets are the caller's hard contract; the stage supervisor widens
  /// only the counted budgets on retry.
  GovernorOptions widened(double factor) const {
    auto scale = [factor](u64 v) -> u64 {
      if (v == 0) return 0;
      const double s = static_cast<double>(v) * factor;
      return s >= 1.8e19 ? ~u64{0} : static_cast<u64>(s);
    };
    GovernorOptions o = *this;
    o.max_solver_checks = scale(max_solver_checks);
    o.max_sym_steps = scale(max_sym_steps);
    o.max_expr_nodes = scale(max_expr_nodes);
    return o;
  }
};

class Governor {
 public:
  Governor() = default;  // unlimited everything
  explicit Governor(const GovernorOptions& opts)
      : deadline_(opts.deadline_seconds > 0
                      ? Deadline::after_seconds(opts.deadline_seconds)
                      : Deadline::never()),
        solver_checks_(opts.max_solver_checks),
        sym_steps_(opts.max_sym_steps),
        expr_nodes_(opts.max_expr_nodes) {}

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  const Deadline& deadline() const { return deadline_; }
  void set_deadline(Deadline d) { deadline_ = d; }
  CancelToken& cancel_token() { return cancel_; }
  /// Share another governor's cancel flag (copies share state): a retry
  /// governor built by the stage supervisor stays cancellable through the
  /// pipeline governor the caller holds.
  void set_cancel_token(CancelToken t) { cancel_ = std::move(t); }
  void cancel() { cancel_.cancel(); }

  Budget& solver_checks() { return solver_checks_; }
  Budget& sym_steps() { return sym_steps_; }
  Budget& expr_nodes() { return expr_nodes_; }

  /// Combined stop poll for loop heads: cancellation first (cheapest and
  /// most urgent), then the deadline. Budget exhaustion is reported by the
  /// failing try_consume at the consuming site, not here.
  Status poll() const {
    if (cancel_.cancelled()) return Status::cancelled("cancel token fired");
    if (deadline_.expired())
      return Status::deadline_exceeded("governor deadline passed");
    return Status();
  }
  bool should_stop() const { return cancel_.cancelled() || deadline_.expired(); }

 private:
  Deadline deadline_;
  CancelToken cancel_;
  Budget solver_checks_;
  Budget sym_steps_;
  Budget expr_nodes_;
};

}  // namespace gp
