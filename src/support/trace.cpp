#include "support/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "support/config.hpp"
#include "support/serial.hpp"
#include "support/str.hpp"

namespace gp::trace {

namespace {

u64 now_us() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Single-writer ring. `count` is the total ever written (monotonic, the
/// slot index is count % capacity); `busy` brackets each write so drains
/// can wait out an in-flight slot store.
struct Ring {
  explicit Ring(u32 capacity, u32 tid_) : slots(capacity), tid(tid_) {}
  std::vector<Event> slots;
  std::atomic<u64> count{0};
  std::atomic<bool> busy{false};
  u32 tid;
};

struct Collector {
  std::mutex mu;  // guards rings registration and drains
  std::vector<std::shared_ptr<Ring>> rings;
  std::atomic<u32> next_tid{1};
  std::atomic<u64> recorded{0};
  std::atomic<u64> dropped{0};
  std::atomic<u32> ring_capacity{0};  // 0 = take GP_TRACE_BUF on first ring
};

Collector& collector() {
  static Collector* c = new Collector();  // leaked: worker threads may
  return *c;                              // record during late shutdown
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{Config::from_env().trace};
  return flag;
}

u32 ring_capacity() {
  Collector& c = collector();
  u32 cap = c.ring_capacity.load(std::memory_order_relaxed);
  if (cap == 0) {
    cap = Config::from_env().trace_buf;
    c.ring_capacity.store(cap, std::memory_order_relaxed);
  }
  return std::max<u32>(cap, 16);
}

Ring& local_ring() {
  thread_local const std::shared_ptr<Ring> ring = [] {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    auto r = std::make_shared<Ring>(
        ring_capacity(), c.next_tid.fetch_add(1, std::memory_order_relaxed));
    c.rings.push_back(r);
    return r;
  }();
  return *ring;
}

/// Wait until no ring has a write in flight. Caller must already have
/// disabled recording (seq_cst) and hold the collector mutex; the two-flag
/// handshake guarantees every writer either observed disabled (and wrote
/// nothing) or finishes the slot before we read it.
void quiesce_locked(Collector& c) {
  for (const auto& ring : c.rings)
    while (ring->busy.load(std::memory_order_seq_cst))
      std::this_thread::yield();
}

std::vector<Event> snapshot_impl(bool clear) {
  Collector& c = collector();
  const bool was = enabled();
  set_enabled(false);
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    quiesce_locked(c);
    for (const auto& ring : c.rings) {
      const u64 total = ring->count.load(std::memory_order_acquire);
      const u64 cap = ring->slots.size();
      const u64 n = std::min(total, cap);
      for (u64 i = total - n; i < total; ++i)
        out.push_back(ring->slots[i % cap]);
      if (clear) ring->count.store(0, std::memory_order_release);
    }
    if (clear) {
      c.recorded.store(0, std::memory_order_relaxed);
      c.dropped.store(0, std::memory_order_relaxed);
    }
  }
  set_enabled(was);
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

void copy_field(char* dst, size_t cap, const char* src) {
  std::strncpy(dst, src ? src : "", cap - 1);
  dst[cap - 1] = '\0';
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_seq_cst);
}

void set_ring_capacity(u32 events) {
  collector().ring_capacity.store(std::max<u32>(events, 16),
                                  std::memory_order_relaxed);
}

void record(const Event& e) {
  Ring& r = local_ring();
  r.busy.store(true, std::memory_order_seq_cst);
  if (!enabled_flag().load(std::memory_order_seq_cst)) {
    // A drain is (or just was) in progress; drop rather than race it.
    r.busy.store(false, std::memory_order_relaxed);
    return;
  }
  const u64 c = r.count.load(std::memory_order_relaxed);
  const u64 cap = r.slots.size();
  Event& slot = r.slots[c % cap];
  slot = e;
  slot.tid = r.tid;
  r.count.store(c + 1, std::memory_order_release);
  r.busy.store(false, std::memory_order_release);
  collector().recorded.fetch_add(1, std::memory_order_relaxed);
  if (c >= cap) collector().dropped.fetch_add(1, std::memory_order_relaxed);
}

u64 recorded() { return collector().recorded.load(std::memory_order_relaxed); }
u64 dropped() { return collector().dropped.load(std::memory_order_relaxed); }

std::vector<Event> snapshot() { return snapshot_impl(/*clear=*/false); }

void reset() { (void)snapshot_impl(/*clear=*/true); }

Status export_chrome_json(const std::string& path) {
  const std::vector<Event> events = snapshot();
  u64 base = ~u64{0};
  for (const Event& e : events) base = std::min(base, e.ts_us);
  if (events.empty()) base = 0;

  std::string j = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    j += "{\"name\": \"" + json_escape(e.name) + "\", \"cat\": \"" +
         json_escape(e.cat) + "\", \"ph\": \"X\", \"ts\": " +
         std::to_string(e.ts_us - base) + ", \"dur\": " +
         std::to_string(e.dur_us) + ", \"pid\": 1, \"tid\": " +
         std::to_string(e.tid) + ", \"args\": {\"session\": " +
         std::to_string(e.session) + "}}";
    j += (i + 1 < events.size()) ? ",\n" : "\n";
  }
  j += "]}\n";
  return serial::write_file_atomic(path,
                                   std::vector<u8>(j.begin(), j.end()));
}

Span::Span(const char* name, const char* cat, u64 session) {
  if (!enabled()) return;
  armed_ = true;
  copy_field(ev_.name, sizeof ev_.name, name);
  copy_field(ev_.cat, sizeof ev_.cat, cat);
  ev_.session = session;
  ev_.ts_us = now_us();
}

Span::~Span() {
  if (!armed_ || !enabled()) return;
  ev_.dur_us = now_us() - ev_.ts_us;
  record(ev_);
}

}  // namespace gp::trace
