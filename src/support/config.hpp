// Unified process configuration: every GP_* environment knob, resolved at
// ONE parse point.
//
// Config::from_env() (config.cpp) is the only place in src/ that calls
// std::getenv — thread-pool sizing, governor budgets, retry policy, the
// checkpoint-store directory, the fault-injection spec and all debug
// tracing flags route through it. Two access patterns:
//
//   - Config::from_env()  parses the environment fresh on every call.
//     Module-level from_env() helpers (GovernorOptions::from_env,
//     SupervisorOptions::from_env, ThreadPool::env_threads, ...) delegate
//     here so tests that setenv() mid-process observe the change.
//   - config()            a process-wide immutable snapshot taken on first
//     use. Hot paths (the planner's expansion loop, concretization's
//     constraint builder) read debug flags from this snapshot instead of
//     calling getenv per iteration; gp::Engine resolves its configuration
//     from it exactly once.
//
// The snapshot is deliberately immutable: a mid-run environment change
// must never reshape an analysis that is already in flight.
#pragma once

#include <string>

#include "support/governor.hpp"

namespace gp {

/// All GP_* knobs. Field order follows the README's env-knob table.
struct Config {
  /// GP_THREADS: worker parallelism for the shared pool, already resolved
  /// (env value clamped to [1, 512]; unset/unparsable = hardware
  /// concurrency, never 0).
  int threads = 1;

  /// GP_DEADLINE_MS / GP_SOLVER_CHECKS / GP_SYM_STEPS / GP_EXPR_NODES:
  /// the pipeline resource budgets (zero fields = unlimited).
  GovernorOptions governor;

  /// GP_RETRIES: extra supervised attempts per stage after the first.
  int max_retries = 2;

  /// GP_STORE_DIR: artifact-store directory ("" = checkpointing disabled).
  std::string store_dir;

  /// GP_FAULT: raw fault-injection spec text (parsed by gp::fault; "" =
  /// injection disabled).
  std::string fault_spec;

  /// GP_DEBUG_PLAN / GP_DEBUG_CONC / GP_DEBUG_CONC2 / GP_DEBUG_VAL:
  /// stderr tracing for the planner search, failed concretizations, the
  /// constraint builder, and payload validation.
  bool debug_plan = false;
  bool debug_conc = false;
  bool debug_conc2 = false;
  bool debug_val = false;

  /// GP_BENCH_FULL: benchmark drivers sweep the whole corpus instead of
  /// the quick subset.
  bool bench_full = false;

  /// GP_OPT_LEVEL: codegen optimization level, 0..2 (default 0). Values
  /// outside that range reject at parse time with the valid grammar —
  /// there is no silent fallback, because a mis-set level would skew
  /// every measurement downstream.
  int opt_level = 0;

  /// GP_PLAN_INDEX: the planner's precomputed candidate index, nogood
  /// learning and reachability precheck. On by default — "0"/"false"/"off"
  /// selects the linear reference path (same results, used by the tier-1
  /// digest-identity drill).
  bool plan_index = true;

  /// GP_METRICS: process-wide metrics registry (support/metrics). On by
  /// default — "0"/"false"/"off" disables collection (instrumentation
  /// sites then cost one relaxed load each).
  bool metrics = true;

  /// GP_TRACE: span recording into the per-thread trace rings
  /// (support/trace). Off by default; gp_pipeline --trace-out enables it
  /// for the run regardless of this knob.
  bool trace = false;

  /// GP_TRACE_BUF: per-thread trace ring capacity in events (clamped to
  /// [64, 4M]; unset/unparsable = 8192). A wrapped ring overwrites its
  /// oldest spans and counts them in trace::dropped().
  u32 trace_buf = 8192;

  /// GP_SERVE_SOCK: unix-socket path the gp_serve daemon listens on ("" =
  /// the tool's --sock flag is required).
  std::string serve_sock;

  /// GP_SERVE_QUEUE: gp_serve admission-queue bound — jobs waiting for a
  /// worker beyond this are shed with an immediate RETRY_AFTER instead of
  /// queueing unboundedly (clamped to [1, 1M]; default 64).
  int serve_queue = 64;

  /// GP_SERVE_MAX_ACTIVE: concurrent analysis workers inside gp_serve;
  /// counted budgets are split across them via
  /// GovernorOptions::split_across (clamped to [1, 256]; default 4).
  int serve_max_active = 4;

  /// GP_SERVE_POISON_RETRIES: dead in-flight incarnations of one job
  /// (start record in the journal, no terminal record, dirty shutdown)
  /// tolerated before the job is quarantined and answered `poisoned`
  /// instead of re-admitted (clamped to [1, 100]; default 2).
  int serve_poison_retries = 2;

  /// GP_SERVE_WATCHDOG_MS: grace beyond a running job's deadline before
  /// the hung-job watchdog fires the session governor's cancel (0 disables
  /// the watchdog; clamped to [0, 1h]; default 10s). Jobs with no deadline
  /// are never watchdog-killed.
  int serve_watchdog_ms = 10'000;

  /// Parse the environment now. The single std::getenv site in src/.
  static Config from_env();
};

/// The process-wide snapshot, parsed from the environment on first use and
/// immutable afterwards.
const Config& config();

}  // namespace gp
