// Scoped span tracing with lock-free per-thread ring buffers, exported as
// Chrome trace_event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev) — the critical-path view of where campaign wall
// time actually goes, stage by stage and lane by lane.
//
// Usage:
//   { trace::Span span("extract", "stage", session_id);  // records on scope
//     ... stage body ...                                  // exit when enabled
//   }
//   trace::export_chrome_json("trace.json");
//
// Design:
//  - Each thread owns one fixed-capacity ring of flat Event structs
//    (GP_TRACE_BUF events; no allocation per span). The owner thread is the
//    only writer, so the record path is lock-free: a seq_cst busy flag, the
//    slot write, a release publish of the count. When the ring wraps, the
//    oldest events are overwritten and counted in dropped().
//  - Readers (export/snapshot) first disable recording (seq_cst), then wait
//    for every ring's busy flag to clear — the classic two-flag
//    store-buffering handshake — so a drain never reads a half-written
//    slot, even while worker threads are mid-span. Recording is restored
//    afterwards.
//  - Disabled cost: Span construction/destruction is one relaxed atomic
//    load each, no clock reads — cheap enough to leave spans on the
//    supervised-stage and store-I/O paths permanently.
//
// GP_TRACE (default off) enables recording from the environment;
// gp_pipeline --trace-out=FILE enables it for the run and exports on exit.
// Thread attribution is a dense per-thread id; session/stage attribution
// rides in each event's name + session argument.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"
#include "support/status.hpp"

namespace gp::trace {

/// One completed span. Flat (no heap pointers) so ring slots can be
/// overwritten freely; names longer than the field are truncated.
struct Event {
  char name[48] = {};
  char cat[16] = {};
  u64 ts_us = 0;    // steady-clock microseconds at span start
  u64 dur_us = 0;   // span duration in microseconds
  u64 session = 0;  // owning gp::core::Session id (0 = none)
  u32 tid = 0;      // dense per-thread trace id
};

/// Is recording on? Single relaxed load — the whole disabled fast path.
bool enabled();
/// Override the GP_TRACE knob at runtime. Flipping to false quiesces
/// writers (export paths call this internally).
void set_enabled(bool on);

/// Capacity (in events) for rings created after this call; existing rings
/// keep their size. Defaults to the GP_TRACE_BUF knob.
void set_ring_capacity(u32 events);

/// Record a completed event into the calling thread's ring. Spans call
/// this; direct use is for instants ("checkpoint committed") phrased as
/// zero-duration spans.
void record(const Event& e);

/// Events successfully recorded since process start (survives ring wrap).
u64 recorded();
/// Events overwritten by ring wrap (lost to export).
u64 dropped();

/// Quiesced copy of every live ring, oldest first within each thread,
/// merged and sorted by start time. Does not clear the rings.
std::vector<Event> snapshot();

/// Discard all recorded events and zero recorded()/dropped() (tests).
void reset();

/// Write every recorded span as Chrome trace_event JSON:
///   {"displayTimeUnit":"ms","traceEvents":[{"name":...,"ph":"X",...}]}
/// Timestamps are rebased to the earliest span. Atomic write (temp-file +
/// rename). Safe to call while other threads are still tracing.
Status export_chrome_json(const std::string& path);

/// RAII scoped span: stamps the start on construction, records on
/// destruction. When tracing is disabled at construction, both ends are a
/// single atomic load.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "stage", u64 session = 0);
  explicit Span(const std::string& name, const char* cat = "stage",
                u64 session = 0)
      : Span(name.c_str(), cat, session) {}
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach/replace the session id after construction (campaign jobs learn
  /// their session id only once the Session exists).
  void set_session(u64 session) { ev_.session = session; }

 private:
  Event ev_;
  bool armed_ = false;
};

}  // namespace gp::trace
