// Process signal utilities for the long-running daemon (tools/gp_serve).
//
// Two concerns, both kept deliberately tiny and async-signal-safe:
//
//  - SIGPIPE must never kill the process. A served client can vanish
//    between any two bytes we write; the write has to fail with EPIPE (a
//    Status the server maps to "client disconnected"), not deliver a fatal
//    signal. ignore_sigpipe() installs SIG_IGN once, process-wide.
//
//  - SIGTERM / SIGINT request a *graceful drain*, not an exit. The handler
//    only sets a flag and writes one byte to a self-pipe; everything else
//    (stop admitting, finish in-flight jobs, flush the manifest) happens on
//    normal threads that either poll drain_requested() or include
//    drain_wakeup_fd() in their poll() set.
//
// SIGKILL is deliberately not handled — it cannot be. Crash recovery is
// the artifact store's job: a killed daemon restarted on the same
// GP_STORE_DIR resumes every interrupted job from its last checkpoint
// (scripts/tier1.sh drills exactly this).
#pragma once

namespace gp::sig {

/// Ignore SIGPIPE process-wide (idempotent). Every socket writer calls it;
/// a dead peer then surfaces as an EPIPE write error instead of a fatal
/// signal.
void ignore_sigpipe();

/// Install SIGTERM + SIGINT handlers that record a drain request
/// (idempotent). The handler is async-signal-safe: one flag store and one
/// self-pipe write.
void install_drain_handler();

/// Has SIGTERM/SIGINT fired since install_drain_handler()?
bool drain_requested();

/// Readable fd that becomes ready when a drain is requested; include it in
/// a poll() set to wake a blocked loop promptly. -1 before
/// install_drain_handler(). The fd stays readable once signalled (the
/// byte is never drained) so every poller observes it.
int drain_wakeup_fd();

/// Reset the drain flag (tests re-running handler scenarios in-process).
void reset_drain_for_test();

}  // namespace gp::sig
