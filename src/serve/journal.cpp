#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>

#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/serial.hpp"

namespace gp::serve {

namespace {

constexpr u32 kJournalMagic = 0x4C4A5047;  // "GPJL"
constexpr size_t kHeaderBytes = 8;

std::vector<u8> header_bytes() {
  serial::Writer w;
  w.put_u32(kJournalMagic);
  w.put_u32(kJournalVersion);
  return w.take();
}

/// One framed record ready to append: [u32 len][u32 crc][payload].
std::vector<u8> frame(const std::vector<u8>& payload) {
  serial::Writer w;
  serial::put_record(w, payload);
  return w.take();
}

std::vector<u8> event_payload(JournalEvent e, const std::string& job_id) {
  serial::Writer w;
  w.put_u8(static_cast<u8>(e));
  w.put_str(job_id);
  return w.take();
}

int close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
  return -1;
}

}  // namespace

Journal::~Journal() {
  std::lock_guard<std::mutex> lock(mu_);
  fd_ = close_quiet(fd_);
}

Status Journal::open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::internal("journal already open");

  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path_).parent_path(), ec);

  ReplayResult result;
  std::vector<u8> bytes;
  if (auto read = serial::read_file(path_); read.ok())
    bytes = std::move(read.value());

  // Parse header + records; `good_end` tracks the byte position after the
  // last fully-verified record so a torn tail can be truncated away.
  size_t good_end = 0;
  bool valid_header = false;
  if (bytes.size() >= kHeaderBytes) {
    serial::Reader hr({bytes.data(), kHeaderBytes});
    valid_header = hr.get_u32() == kJournalMagic &&
                   hr.get_u32() == kJournalVersion;
  }
  if (!bytes.empty() && !valid_header) {
    // Foreign or version-bumped file: everything in it is unreadable by
    // definition. Rotate to a fresh log; recovery falls back to client
    // resubmission + artifact-store resume.
    result.rotated = true;
    metrics::registry().counter("serve.journal_rotated").add();
  }

  if (valid_header) {
    good_end = kHeaderBytes;
    serial::Reader r(
        {bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes});
    // first-admit order; index into result.jobs.
    std::map<std::string, size_t> index;
    for (;;) {
      if (r.at_end()) break;
      if (fault::should_fire(fault::Point::JournalReplay)) {
        metrics::registry().counter("serve.journal_replay_faults").add();
        break;  // injected corrupt record: end-of-log, never a crash
      }
      const auto rec = serial::get_record(r);
      if (!rec) break;  // short/oversized/CRC-failed record: torn tail
      serial::Reader pr(*rec);
      const u8 raw_event = pr.get_u8();
      const std::string id = pr.get_str();
      if (!pr.ok()) break;
      const auto event = static_cast<JournalEvent>(raw_event);
      bool parsed = true;
      switch (event) {
        case JournalEvent::kAdmit: {
          const std::string klass = pr.get_str();
          const u32 carried = pr.get_u32();
          auto spec = JobSpec::decode(pr);
          if (!pr.ok() || !spec) {
            parsed = false;
            break;
          }
          auto [it, fresh] = index.emplace(id, result.jobs.size());
          if (fresh) result.jobs.emplace_back();
          ReplayedJob& job = result.jobs[it->second];
          job = ReplayedJob{};  // a re-admit after Done restarts the cycle
          job.spec = std::move(*spec);
          job.job_id = id;
          job.klass = klass;
          job.dead_incarnations = carried;
          break;
        }
        case JournalEvent::kStart: {
          auto it = index.find(id);
          if (it != index.end() && result.jobs[it->second].open)
            result.jobs[it->second].dead_incarnations++;
          break;
        }
        case JournalEvent::kDone: {
          const u8 status_code = pr.get_u8();
          const u64 digest = pr.get_u64();
          if (!pr.ok()) {
            parsed = false;
            break;
          }
          auto it = index.find(id);
          if (it != index.end()) {
            ReplayedJob& job = result.jobs[it->second];
            job.open = false;
            job.done_status = status_code;
            job.done_digest = digest;
            // Its recorded incarnations completed; none of them is dead.
            job.dead_incarnations = 0;
          }
          break;
        }
        case JournalEvent::kShed:
          (void)pr.get_str();  // audit-only; reason unused on replay
          parsed = pr.ok();
          break;
        case JournalEvent::kQuarantined: {
          (void)pr.get_str();
          parsed = pr.ok();
          auto it = index.find(id);
          if (parsed && it != index.end()) {
            result.jobs[it->second].open = false;
            result.jobs[it->second].quarantined = true;
          }
          break;
        }
        case JournalEvent::kCleanShutdown:
          result.clean_shutdown = true;
          break;
        default:
          parsed = false;  // unknown event from the future: end-of-log
          break;
      }
      if (!parsed) break;
      result.records++;
      result.clean_shutdown = (event == JournalEvent::kCleanShutdown);
      good_end = kHeaderBytes + (bytes.size() - kHeaderBytes - r.remaining());
    }
  }
  result.torn_tail_bytes =
      result.rotated ? 0 : bytes.size() - std::min(bytes.size(), good_end);

  // Materialize a clean file: fresh header on rotation/creation, or the
  // verified prefix when a torn tail must be cut so future appends land
  // after the last good record. An intact log is left untouched.
  const bool needs_rewrite =
      bytes.empty() || result.rotated || result.torn_tail_bytes > 0;
  if (needs_rewrite) {
    std::vector<u8> keep;
    if (result.rotated || bytes.empty()) {
      keep = header_bytes();
    } else {
      keep.assign(bytes.begin(), bytes.begin() + static_cast<long>(good_end));
    }
    if (Status st = serial::write_file_atomic(path_, keep); !st.ok())
      return Status::internal("journal rewrite " + path_ + ": " +
                              st.message());
    size_ = keep.size();
  } else {
    size_ = bytes.size();
  }
  if (result.torn_tail_bytes > 0)
    metrics::registry().counter("serve.journal_torn_tails").add();

  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0)
    return Status::internal("journal open " + path_ + ": " +
                            std::strerror(errno));
  replay_ = std::move(result);
  return Status();
}

ReplayResult Journal::take_replay() {
  std::lock_guard<std::mutex> lock(mu_);
  ReplayResult r = replay_ ? std::move(*replay_) : ReplayResult{};
  replay_.reset();
  return r;
}

Status Journal::append_locked(const std::vector<u8>& payload, bool sync) {
  if (fd_ < 0) return Status::internal("journal not open");
  const std::vector<u8> rec = frame(payload);
  if (fault::should_fire(fault::Point::JournalAppend)) {
    // Model a crash mid-append: persist only a prefix and leave it. The
    // next replay reads the torn record as end-of-log; the server keeps
    // serving non-durably and counts the failure.
    metrics::registry().counter("serve.journal_append_faults").add();
    const size_t torn = rec.size() / 2;
    const ssize_t n = ::write(fd_, rec.data(), torn);
    if (n > 0) size_ += static_cast<u64>(n);
    return Status::fault_injected("injected journal_append fault");
  }
  size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Hard error (ENOSPC/EIO): truncate the partial record away so the log
    // stays parseable end-to-end, then report the failure.
    (void)::ftruncate(fd_, static_cast<off_t>(size_));
    return Status::internal(std::string("journal append: ") +
                            std::strerror(n < 0 ? errno : EIO));
  }
  size_ += rec.size();
  if (sync) (void)::fdatasync(fd_);
  metrics::registry().counter("serve.journal_appends").add();
  return Status();
}

Status Journal::append_admit(const JobSpec& spec, const std::string& job_id,
                             const std::string& klass,
                             u32 dead_incarnations) {
  serial::Writer w;
  w.put_u8(static_cast<u8>(JournalEvent::kAdmit));
  w.put_str(job_id);
  w.put_str(klass);
  w.put_u32(dead_incarnations);
  spec.encode(w);
  std::lock_guard<std::mutex> lock(mu_);
  return append_locked(w.bytes(), /*sync=*/true);
}

Status Journal::append_start(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return append_locked(event_payload(JournalEvent::kStart, job_id),
                       /*sync=*/true);
}

Status Journal::append_done(const std::string& job_id, u8 status_code,
                            u64 digest) {
  serial::Writer w;
  w.put_u8(static_cast<u8>(JournalEvent::kDone));
  w.put_str(job_id);
  w.put_u8(status_code);
  w.put_u64(digest);
  std::lock_guard<std::mutex> lock(mu_);
  return append_locked(w.bytes(), /*sync=*/true);
}

Status Journal::append_shed(const std::string& job_id,
                            const std::string& reason) {
  serial::Writer w;
  w.put_u8(static_cast<u8>(JournalEvent::kShed));
  w.put_str(job_id);
  w.put_str(reason);
  std::lock_guard<std::mutex> lock(mu_);
  // Audit trail only: a lost Shed record costs nothing durable, so skip
  // the fsync — shed storms must stay cheap.
  return append_locked(w.bytes(), /*sync=*/false);
}

Status Journal::append_quarantined(const std::string& job_id,
                                   const std::string& reason) {
  serial::Writer w;
  w.put_u8(static_cast<u8>(JournalEvent::kQuarantined));
  w.put_str(job_id);
  w.put_str(reason);
  std::lock_guard<std::mutex> lock(mu_);
  return append_locked(w.bytes(), /*sync=*/true);
}

Status Journal::compact(const std::vector<LiveJob>& live, bool clean) {
  serial::Writer out;
  out.put_raw(header_bytes());
  for (const LiveJob& job : live) {
    serial::Writer admit;
    admit.put_u8(static_cast<u8>(JournalEvent::kAdmit));
    admit.put_str(job.job_id);
    admit.put_str(job.klass);
    admit.put_u32(job.dead_incarnations);
    job.spec.encode(admit);
    serial::put_record(out, admit.bytes());
    if (job.quarantined) {
      serial::Writer q;
      q.put_u8(static_cast<u8>(JournalEvent::kQuarantined));
      q.put_str(job.job_id);
      q.put_str("compacted");
      serial::put_record(out, q.bytes());
    } else if (job.started) {
      serial::put_record(out,
                         event_payload(JournalEvent::kStart, job.job_id));
    }
  }
  if (clean)
    serial::put_record(out,
                       event_payload(JournalEvent::kCleanShutdown, ""));

  std::lock_guard<std::mutex> lock(mu_);
  // write_file_atomic rides the same ShortWrite/RenameFail fault points as
  // the artifact store: a failed compaction leaves the old log intact.
  if (Status st = serial::write_file_atomic(path_, out.bytes()); !st.ok())
    return st;
  fd_ = close_quiet(fd_);
  return reopen_locked();
}

Status Journal::reopen_locked() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0)
    return Status::internal("journal reopen " + path_ + ": " +
                            std::strerror(errno));
  struct stat st {};
  size_ = ::fstat(fd_, &st) == 0 ? static_cast<u64>(st.st_size) : 0;
  metrics::registry().counter("serve.journal_compactions").add();
  return Status();
}

u64 Journal::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace gp::serve
