// Wire protocol for the gp_serve daemon: length-framed, CRC-checked
// messages over a local (unix-domain) stream socket.
//
// Framing reuses the artifact store's record discipline (support/serial):
// every frame is [u32 payload_len][u32 crc32(payload)][payload], so a
// truncated or bit-flipped frame is detected by the CRC/length check and
// surfaces as a Status — never as a malformed message handed to the
// decoder. Payloads are serial::Writer/Reader encodings beginning with a
// one-byte message type; the Reader's sticky-failure contract means a
// hostile or corrupt payload degrades to "decode failed", never UB.
//
// Job identity is content-addressed: JobSpec::job_id() hashes exactly the
// fields that determine the analysis result (program, source, obfuscation,
// seed, goal, budget overrides — NOT the admission class or streaming
// preference). A client that reconnects after a dropped connection, or
// re-submits after the daemon was SIGKILLed and restarted, lands on the
// same id; combined with the content-addressed artifact store this makes
// re-issued requests resume instead of recompute.
//
// The protocol is deliberately version-pinned (kProtocolVersion in every
// frame'd Hello-free world: the version rides in each request) and bounded
// (kMaxFrame) so a garbage or adversarial peer cannot make the daemon
// allocate unboundedly.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/serial.hpp"
#include "support/status.hpp"

namespace gp::serve {

/// Bumped on any wire-format change; a mismatched peer gets kError.
constexpr u32 kProtocolVersion = 1;

/// Upper bound on one frame's payload bytes. Requests are tiny; responses
/// carry at most a stats JSON blob. Anything larger is a corrupt length or
/// a hostile peer and is rejected before allocation.
constexpr u32 kMaxFrame = 4u << 20;

enum class MsgType : u8 {
  // Requests.
  kSubmit = 1,    // run (or attach to) an analysis job
  kAttach = 2,    // re-attach to an existing job by id (reconnect path)
  kStats = 3,     // metrics/registry + server gauges as JSON
  kPing = 4,      // liveness probe
  kShutdown = 5,  // request graceful drain

  // Responses.
  kAccepted = 64,     // job admitted (or deduplicated onto a live/done job)
  kShed = 65,         // admission refused; retry after the given delay
  kProgress = 66,     // job stage transition (streamed while waiting)
  kResult = 67,       // terminal job outcome
  kStatsReply = 68,
  kPong = 69,
  kError = 70,        // malformed request / unknown job / version mismatch
  kShutdownAck = 71,
};

/// One analysis request: what to analyze and under which resource budget.
/// Zero-valued budget fields inherit the server's configuration.
struct JobSpec {
  std::string program;  // corpus name (label when source is inline)
  std::string source;   // optional inline mini-C source ("" = corpus lookup)
  std::string obf = "llvm-obf";
  std::string goal = "execve";  // "execve" | "mprotect" | "mmap" | "all"
  std::string klass;            // admission class ("" = "default")
  u64 seed = 5;
  double deadline_ms = 0;  // per-request deadline override (0 = server's)
  u64 solver_checks = 0;   // counted-budget overrides (0 = server's)
  u64 sym_steps = 0;
  u64 expr_nodes = 0;

  /// Content-addressed identity over every result-determining field
  /// (admission class and transport preferences excluded). Filename- and
  /// log-safe ("job-<hex16>").
  std::string job_id() const;

  void encode(serial::Writer& w) const;
  static std::optional<JobSpec> decode(serial::Reader& r);
};

/// Terminal outcome of one job, as sent to every waiter.
struct JobOutcome {
  std::string job_id;
  u8 status_code = 0;  // gp::StatusCode of the worst stage
  std::string status_msg;
  u64 digest = 0;      // fnv1a over the serialized chains (campaign scheme)
  double seconds = 0;  // analysis wall clock (queue wait excluded)
  /// True when any stage was served from a checkpoint (same-process cache
  /// hit or cross-process resume) — the drill's "resumed warm" signal.
  bool warm = false;
  std::vector<std::pair<std::string, u32>> chains_per_goal;  // goal -> count

  u32 chains_total() const {
    u32 n = 0;
    for (const auto& [name, c] : chains_per_goal) n += c;
    return n;
  }

  void encode(serial::Writer& w) const;
  static std::optional<JobOutcome> decode(serial::Reader& r);
};

// -- request/response payload helpers ---------------------------------------
// Each builder returns a full frame payload (type byte + fields); each
// parse_* expects the Reader positioned after the type byte.

std::vector<u8> make_submit(const JobSpec& spec, bool stream);
struct SubmitMsg {
  JobSpec spec;
  bool stream = true;  // keep the connection and stream progress + result
};
std::optional<SubmitMsg> parse_submit(serial::Reader& r);

std::vector<u8> make_attach(const std::string& job_id);
std::optional<std::string> parse_attach(serial::Reader& r);

std::vector<u8> make_simple(MsgType t);  // kStats/kPing/kShutdown/kPong/...

std::vector<u8> make_accepted(const std::string& job_id, bool already_done);
struct AcceptedMsg {
  std::string job_id;
  bool already_done = false;
};
std::optional<AcceptedMsg> parse_accepted(serial::Reader& r);

std::vector<u8> make_shed(u32 retry_after_ms, const std::string& reason);
struct ShedMsg {
  u32 retry_after_ms = 0;
  std::string reason;  // "queue-full" | "class-full" | "draining"
};
std::optional<ShedMsg> parse_shed(serial::Reader& r);

std::vector<u8> make_progress(const std::string& job_id,
                              const std::string& stage);
struct ProgressMsg {
  std::string job_id;
  std::string stage;  // "queued" | "extract" | "subsume" | "plan"
};
std::optional<ProgressMsg> parse_progress(serial::Reader& r);

std::vector<u8> make_result(const JobOutcome& outcome);
std::optional<JobOutcome> parse_result(serial::Reader& r);

std::vector<u8> make_stats_reply(const std::string& json);
std::optional<std::string> parse_stats_reply(serial::Reader& r);

std::vector<u8> make_error(const std::string& message);
std::optional<std::string> parse_error(serial::Reader& r);

/// First byte of a decoded payload, or nullopt for an empty one.
std::optional<MsgType> peek_type(std::span<const u8> payload);

/// Consume the leading [type byte][u32 protocol version] every message
/// carries; nullopt on a short payload or version mismatch. The parse_*
/// helpers above expect the Reader positioned right after this.
std::optional<MsgType> read_header(serial::Reader& r);

// -- socket framing ----------------------------------------------------------
// Blocking, EINTR-retrying full-frame I/O over a connected stream socket.
// Every failure is a Status: a clean peer close reads as Cancelled
// ("peer closed"), a CRC/length violation as Internal, an injected
// sock_read/sock_write fault as FaultInjected. Nothing here ever throws
// and nothing raises SIGPIPE (sends use MSG_NOSIGNAL; sig::ignore_sigpipe
// covers exotic paths).

Status write_frame(int fd, std::span<const u8> payload);
Result<std::vector<u8>> read_frame(int fd, u32 max_len = kMaxFrame);

}  // namespace gp::serve
