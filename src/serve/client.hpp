// Blocking client for the gp_serve daemon. One Client wraps one connected
// unix-domain socket; every call is synchronous frame-in/frame-out over the
// protocol in protocol.hpp. All failures — connect refusal, mid-stream
// disconnect, CRC violation, injected socket fault — surface as Status;
// nothing throws.
//
// The canonical flow mirrors the daemon's admission model:
//
//   auto c = Client::connect(sock);
//   auto adm = c->submit(spec);              // kAccepted or kShed
//   if (adm->accepted) {
//     auto outcome = c->wait_result(...);    // progress frames, then result
//   } else {
//     sleep_for(adm->shed.retry_after_ms); retry
//   }
//
// Reconnect-after-crash: a new Client on the restarted daemon re-submits
// the identical spec (same JobSpec::job_id) or calls attach(job_id); either
// way it lands on the same registry record / store checkpoints.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace gp::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(Client&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Client& operator=(Client&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  static Result<Client> connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Bound every subsequent socket read/write to `ms` milliseconds
  /// (SO_RCVTIMEO/SO_SNDTIMEO); an expired wait surfaces as a Status like
  /// any other I/O failure. 0 restores fully blocking I/O. Harnesses that
  /// must survive a wedged or fault-injected daemon (gp_chaos) set this;
  /// interactive callers default to blocking so long jobs stream freely.
  Status set_io_timeout_ms(int ms);

  /// The daemon's immediate admission answer to a submit/attach.
  struct Admission {
    bool accepted = false;  // false → inspect `shed`
    AcceptedMsg ok;         // valid when accepted
    ShedMsg shed;           // valid when !accepted
  };

  /// Submit a job. stream=true keeps the connection eligible for
  /// wait_result(); stream=false is fire-and-forget (poll later via a new
  /// connection's attach()).
  Result<Admission> submit(const JobSpec& spec, bool stream = true);

  /// Re-attach to a job by id (reconnect path). An unknown id — e.g. one
  /// the daemon lost to SIGKILL — is Internal("unknown job ..."); the
  /// caller's recovery is to re-submit the spec, which resumes from the
  /// store.
  Result<Admission> attach(const std::string& job_id);

  /// After an accepted submit(stream=true) or attach: block until the
  /// terminal kResult, invoking on_progress per stage transition frame.
  Result<JobOutcome> wait_result(
      const std::function<void(const ProgressMsg&)>& on_progress = {});

  Result<std::string> stats();
  Status ping();
  /// Ask the daemon to drain and exit (kShutdownAck expected back).
  Status shutdown_server();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Write one request frame and read one response frame.
  Result<std::vector<u8>> roundtrip(const std::vector<u8>& request);
  Result<Admission> parse_admission(const std::vector<u8>& payload);

  int fd_ = -1;
};

}  // namespace gp::serve
