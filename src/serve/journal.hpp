// Durable job journal for the gp_serve daemon: an append-only, CRC-framed
// write-ahead log of admission state, so a SIGKILLed daemon restarted on
// the same store dir re-enqueues its own backlog instead of waiting for
// clients to resubmit.
//
// File layout (<store_dir>/journal.gpj):
//
//   [u32 magic "GPJL"][u32 journal version]
//   record*            each record = serial::put_record framing
//                      ([u32 len][u32 crc32(payload)][payload])
//   payload = [u8 event][str job_id][event-specific fields]
//
// Design rules, inherited from the artifact store's discipline:
//  - Appends are a single write() of a complete framed record followed by
//    fdatasync (audit-only Shed records skip the sync). A crash mid-append
//    leaves a torn tail whose CRC/length check fails on the next replay —
//    the tail then reads as end-of-log, never as a crash or a bad record.
//  - Nothing in the file is trusted. A bad magic or bumped version reads
//    as an empty log (the file is rotated to a fresh header); a corrupt or
//    truncated record ends the replay at the last good record.
//  - Compaction rewrites the log with only the still-live jobs (admit +
//    start records carrying the accumulated dead-incarnation count) via
//    temp-file + rename, so a crash mid-compaction leaves the old log.
//
// Poison detection: a Start record with no terminal record when the log
// ends — and no CleanShutdown marker — means that incarnation of the job
// died in flight. Replay counts such dead incarnations per job id (plus
// any count carried over by compaction); the server quarantines jobs at
// the GP_SERVE_POISON_RETRIES threshold.
//
// Thread safety: all methods are serialized by an internal mutex; the
// server additionally calls every append under its own registry lock so
// per-job record order (Admit before Start before Done) follows the job's
// state machine.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "support/status.hpp"

namespace gp::serve {

/// Bumped on any journal layout change; an old-version file reads as an
/// empty log and is rotated.
constexpr u32 kJournalVersion = 1;

enum class JournalEvent : u8 {
  kAdmit = 1,        // job admitted: spec + class + carried incarnations
  kStart = 2,        // a worker began running the job
  kDone = 3,         // terminal outcome: status code + digest
  kShed = 4,         // admission refused (audit trail; not fsynced)
  kQuarantined = 5,  // poison threshold crossed; answered `poisoned`
  kCleanShutdown = 6,  // drain completed; open entries are not poison
};

/// One job's state as reconstructed by replay().
struct ReplayedJob {
  JobSpec spec;
  std::string job_id;
  std::string klass;
  /// Start records never matched by a terminal record, plus the count an
  /// earlier compaction carried over — i.e. incarnations that died in
  /// flight (only meaningful when the log did not end cleanly).
  u32 dead_incarnations = 0;
  /// True while the job has an Admit but no terminal record.
  bool open = true;
  bool quarantined = false;
  /// Valid when a Done record closed the job (result servable by digest).
  u8 done_status = 0;
  u64 done_digest = 0;
};

struct ReplayResult {
  std::vector<ReplayedJob> jobs;  // in first-admit order
  bool clean_shutdown = false;    // log ended with kCleanShutdown
  u64 records = 0;                // well-formed records consumed
  u64 torn_tail_bytes = 0;        // bytes discarded after the last good record
  bool rotated = false;           // bad magic/version: log discarded
};

/// A still-live job handed to compact(): everything replay needs to
/// reconstruct it, minus the history.
struct LiveJob {
  JobSpec spec;
  std::string job_id;
  std::string klass;
  u32 dead_incarnations = 0;
  bool started = false;  // currently Active: compaction re-emits the Start
  /// Poisoned jobs stay in the compacted log (Admit + Quarantined records)
  /// so the `poisoned` answer survives any number of restarts.
  bool quarantined = false;
};

class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating parent dirs and the file as needed) and parse the
  /// existing log. A bad header rotates the file; a torn tail is
  /// truncated away so new appends extend the last good record. The
  /// parsed state is returned exactly once, by the replay() that follows.
  Status open();

  /// The state parsed by open(). Call once; the server turns it into
  /// registry records and a re-enqueued backlog.
  ReplayResult take_replay();

  // Appends. Every failure (including the injected journal_append torn
  // write) is a Status; the caller degrades to non-durable admission and
  // counts it — the daemon never dies over its audit trail.
  Status append_admit(const JobSpec& spec, const std::string& job_id,
                      const std::string& klass, u32 dead_incarnations = 0);
  Status append_start(const std::string& job_id);
  Status append_done(const std::string& job_id, u8 status_code, u64 digest);
  Status append_shed(const std::string& job_id, const std::string& reason);
  Status append_quarantined(const std::string& job_id,
                            const std::string& reason);

  /// Rewrite the log to exactly `live` (admit + start records), appending
  /// a CleanShutdown marker when `clean`. Atomic (temp file + rename); on
  /// failure the old log stays.
  Status compact(const std::vector<LiveJob>& live, bool clean);

  /// Current file size (bytes appended since open/compact); the server's
  /// size-threshold compaction trigger.
  u64 size_bytes() const;

  const std::string& path() const { return path_; }

 private:
  Status append_locked(const std::vector<u8>& payload, bool sync);
  Status reopen_locked();

  std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  u64 size_ = 0;
  std::optional<ReplayResult> replay_;
};

}  // namespace gp::serve
