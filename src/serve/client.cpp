#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/signal.hpp"

namespace gp::serve {

Result<Client> Client::connect(const std::string& socket_path) {
  sig::ignore_sigpipe();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path)
    return Status::internal("bad socket path: '" + socket_path + "'");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::internal(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int e = errno;
    ::close(fd);
    return Status::internal("connect " + socket_path + ": " +
                            std::strerror(e));
  }
  return Client(fd);
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status Client::set_io_timeout_ms(int ms) {
  if (!connected()) return Status::internal("client not connected");
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) < 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) < 0)
    return Status::internal(std::string("setsockopt: ") +
                            std::strerror(errno));
  return {};
}

Result<std::vector<u8>> Client::roundtrip(const std::vector<u8>& request) {
  if (!connected()) return Status::internal("client not connected");
  if (Status st = write_frame(fd_, request); !st.ok()) return st;
  return read_frame(fd_);
}

Result<Client::Admission> Client::parse_admission(
    const std::vector<u8>& payload) {
  serial::Reader r(payload);
  const auto type = read_header(r);
  if (!type) return Status::internal("bad response header");
  Admission adm;
  switch (*type) {
    case MsgType::kAccepted: {
      auto m = parse_accepted(r);
      if (!m) return Status::internal("malformed kAccepted");
      adm.accepted = true;
      adm.ok = std::move(*m);
      return adm;
    }
    case MsgType::kShed: {
      auto m = parse_shed(r);
      if (!m) return Status::internal("malformed kShed");
      adm.accepted = false;
      adm.shed = std::move(*m);
      return adm;
    }
    case MsgType::kError: {
      auto msg = parse_error(r);
      return Status::internal(msg ? *msg : "daemon error");
    }
    default:
      return Status::internal("unexpected response type " +
                              std::to_string(static_cast<int>(*type)));
  }
}

Result<Client::Admission> Client::submit(const JobSpec& spec, bool stream) {
  auto reply = roundtrip(make_submit(spec, stream));
  if (!reply.ok()) return reply.status();
  return parse_admission(reply.value());
}

Result<Client::Admission> Client::attach(const std::string& job_id) {
  auto reply = roundtrip(make_attach(job_id));
  if (!reply.ok()) return reply.status();
  return parse_admission(reply.value());
}

Result<JobOutcome> Client::wait_result(
    const std::function<void(const ProgressMsg&)>& on_progress) {
  if (!connected()) return Status::internal("client not connected");
  for (;;) {
    auto frame = read_frame(fd_);
    if (!frame.ok()) return frame.status();
    serial::Reader r(frame.value());
    const auto type = read_header(r);
    if (!type) return Status::internal("bad response header");
    if (*type == MsgType::kProgress) {
      auto m = parse_progress(r);
      if (!m) return Status::internal("malformed kProgress");
      if (on_progress) on_progress(*m);
      continue;
    }
    if (*type == MsgType::kResult) {
      auto outcome = parse_result(r);
      if (!outcome) return Status::internal("malformed kResult");
      return *outcome;
    }
    if (*type == MsgType::kError) {
      auto msg = parse_error(r);
      return Status::internal(msg ? *msg : "daemon error");
    }
    return Status::internal("unexpected frame while awaiting result");
  }
}

Result<std::string> Client::stats() {
  auto reply = roundtrip(make_simple(MsgType::kStats));
  if (!reply.ok()) return reply.status();
  serial::Reader r(reply.value());
  if (read_header(r) != std::optional<MsgType>(MsgType::kStatsReply))
    return Status::internal("unexpected stats response");
  auto json = parse_stats_reply(r);
  if (!json) return Status::internal("malformed kStatsReply");
  return *json;
}

Status Client::ping() {
  auto reply = roundtrip(make_simple(MsgType::kPing));
  if (!reply.ok()) return reply.status();
  serial::Reader r(reply.value());
  if (read_header(r) != std::optional<MsgType>(MsgType::kPong))
    return Status::internal("unexpected ping response");
  return Status();
}

Status Client::shutdown_server() {
  auto reply = roundtrip(make_simple(MsgType::kShutdown));
  if (!reply.ok()) return reply.status();
  serial::Reader r(reply.value());
  if (read_header(r) != std::optional<MsgType>(MsgType::kShutdownAck))
    return Status::internal("unexpected shutdown response");
  return Status();
}

}  // namespace gp::serve
