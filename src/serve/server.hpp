// gp_serve's daemon core: a crash-tolerant, multi-tenant analysis server
// multiplexing jobs onto one warm core::Engine.
//
// Architecture (all threads owned by Server):
//
//   accept thread ── poll(listen fd) ──▶ one handler thread per connection
//        │                                 │  parses frames, runs admission,
//        │                                 │  streams progress/results; ALL
//        │                                 │  socket I/O happens here
//        ▼                                 ▼
//   admission control            bounded job queue (GP_SERVE_QUEUE,
//   (shed with RETRY_AFTER)      per-class limits) ──▶ N worker threads
//                                                      (GP_SERVE_MAX_ACTIVE)
//                                                      run Sessions on the
//                                                      shared Engine
//
// Robustness contracts:
//  - Jobs are DETACHED from connections. A worker owns the running
//    Session; the connection thread merely observes the job record. A
//    client hangup therefore never cancels an admitted job — the result
//    lands in the registry (and, stage by stage, in the artifact store)
//    and a reconnecting client re-attaches by job id.
//  - Admission is bounded. Beyond GP_SERVE_QUEUE queued jobs (or the
//    per-class share), a submit gets an immediate kShed with a
//    retry_after_ms hint instead of queueing unboundedly. Identical
//    resubmits (same JobSpec::job_id) dedupe onto the live or finished
//    record and are never shed.
//  - Every socket error is a Status (injected accept/sock_read/sock_write
//    faults included): the connection dies, the daemon does not.
//  - Graceful drain (SIGTERM / kShutdown): stop admitting, finish queued +
//    in-flight jobs (their stage outputs checkpoint to the store as they
//    complete), then exit 0. SIGKILL needs no cooperation: a restart on
//    the same store dir resumes re-issued jobs from the surviving
//    checkpoints to byte-identical digests (tier1.sh drills this).
//  - Admission is durable (serve/journal). With a store dir, every admit/
//    start/done is written ahead to an append-only CRC-framed journal;
//    a restart replays it and re-enqueues the incomplete backlog itself,
//    with NO client resubmission. A job whose incarnations keep dying
//    in flight is quarantined after GP_SERVE_POISON_RETRIES deaths and
//    answered `poisoned` instead of being allowed to kill another worker.
//  - A hung-job watchdog (GP_SERVE_WATCHDOG_MS grace past the effective
//    deadline) cancels wedged sessions through their governors, so one
//    stuck analysis cannot permanently eat a worker slot.
//
// Per-request deadlines/budgets: JobSpec overrides are resolved against
// the engine's gp::Config and split across GP_SERVE_MAX_ACTIVE workers via
// GovernorOptions::split_across; degraded stages ride the Session's
// supervised retry path and are returned with their Status, never dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"

namespace gp::serve {

struct ServeOptions {
  std::string socket_path;  // unix-domain socket to listen on (required)
  int queue_limit = 64;     // queued (not yet running) jobs before shedding
  int max_active = 4;       // concurrent analysis workers
  /// Per-admission-class queue share; 0 = the full queue_limit (classes
  /// then only bound each other through the total).
  int per_class_limit = 0;
  std::string store_dir;    // checkpoint/resume directory ("" disables)
  /// Dead in-flight incarnations (journal Start with no terminal record
  /// across a dirty shutdown) tolerated before a job is quarantined.
  int poison_retries = 2;
  /// Watchdog grace beyond a running job's effective deadline before its
  /// session governor is cancelled; 0 disables the watchdog. Jobs with no
  /// deadline are never watchdog-killed.
  int watchdog_ms = 10'000;
  /// Journal size that triggers compaction on the next job completion.
  u64 journal_compact_bytes = u64{1} << 20;

  /// GP_SERVE_SOCK / GP_SERVE_QUEUE / GP_SERVE_MAX_ACTIVE /
  /// GP_SERVE_POISON_RETRIES / GP_SERVE_WATCHDOG_MS / GP_STORE_DIR via
  /// gp::Config (fresh parse, setenv-sensitive like the other from_env
  /// helpers).
  static ServeOptions from_env();
};

/// What journal replay did at startup — surfaced so the daemon can log one
/// honest line about recovery before accepting traffic.
struct ReplaySummary {
  bool journal_enabled = false;
  bool clean_shutdown = false;
  bool rotated = false;        // bad magic/version: old log discarded
  u64 records = 0;             // well-formed records read
  u64 torn_tail_bytes = 0;     // discarded after the last good record
  u64 requeued = 0;            // incomplete jobs re-enqueued (no client)
  u64 completed = 0;           // finished jobs re-installed for attach
  u64 quarantined = 0;         // jobs now answered `poisoned`
};

class Server {
 public:
  Server(core::Engine& engine, ServeOptions opts);
  ~Server();  // stop(/*drain=*/false) if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on options().socket_path and start the accept and
  /// worker threads. A stale socket file from a SIGKILLed predecessor is
  /// replaced (after probing that no live daemon answers on it).
  Status start();

  /// Stop admitting new jobs (submits shed with reason "draining");
  /// already-admitted jobs keep running. Idempotent, non-blocking.
  void request_drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Block until the queue is empty and no job is active.
  void wait_drained();

  /// Shut down. drain=true finishes queued + active jobs first (the
  /// SIGTERM path); drain=false cancels active sessions via their
  /// governors and fails queued jobs as cancelled. Joins every thread;
  /// idempotent.
  void stop(bool drain);

  /// True once a client sent kShutdown — the daemon main loop's cue to
  /// stop(drain=true) and exit.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// {"serve": {queue_depth, active, draining, ...}, "metrics": {...}}.
  std::string stats_json() const;

  const ServeOptions& options() const { return opts_; }

  /// Test hook: freeze/unfreeze workers so admission behavior (queue
  /// bounds, shedding, dedupe) can be exercised deterministically while
  /// jobs are provably still queued.
  void hold_workers(bool hold);

  /// Test hook: make every job spin for `ms` after its session starts,
  /// ignoring everything but governor cancellation — a deterministic
  /// stand-in for "analysis wedged past its deadline" so the watchdog can
  /// be exercised without a genuinely hung solver.
  void set_test_wedge_ms(int ms) {
    test_wedge_ms_.store(ms, std::memory_order_release);
  }

  /// What journal replay did in start(). Zero-valued (journal_enabled ==
  /// false) when the server runs without a store dir.
  const ReplaySummary& replay_summary() const { return replay_summary_; }

 private:
  struct JobRecord {
    JobSpec spec;
    std::string id;
    std::string klass;  // resolved admission class ("default" if unset)
    enum class State : u8 { Queued, Active, Done } state = State::Queued;
    std::string stage = "queued";
    /// Bumped (under mu_) on every observable change; streamers wait on
    /// cv_ for it to advance.
    u64 gen = 1;
    JobOutcome outcome;  // valid once state == Done
    /// Live only while a worker runs the job (guarded by mu_); the abort
    /// path cancels through it.
    core::Session* session = nullptr;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Incarnations of this job that died in flight (from journal replay).
    u32 dead_incarnations = 0;
    /// Quarantined records are pinned: answered `poisoned`, never evicted.
    bool quarantined = false;
    /// Watchdog bookkeeping, valid while a session is registered: when the
    /// job's effective wall deadline (0 = none) started counting.
    double deadline_seconds = 0;
    std::chrono::steady_clock::time_point session_started_at;
    bool watchdog_fired = false;
  };
  using RecordPtr = std::shared_ptr<JobRecord>;

  void accept_loop();
  void worker_loop();
  void watchdog_loop();
  /// Turn the journal's replayed state into registry records: completed
  /// jobs become attachable Done records, poisoned jobs become pinned
  /// `poisoned` answers, incomplete jobs re-enter the queue. Runs before
  /// any thread starts; finishes with a compaction that rebaselines
  /// dead-incarnation counts.
  void apply_replay(ReplayResult replay);
  /// Live-jobs snapshot for Journal::compact (caller holds mu_).
  std::vector<LiveJob> live_jobs_locked() const;
  void maybe_compact_locked();
  void handle_connection(u64 conn_id, int fd);
  /// Returns the record to stream (nullptr when shed / not streaming).
  // `keep` is cleared when the admission reply could not be written: the
  // client never saw a verdict, so the only safe move is to close the
  // connection (leaving it open deadlocks both sides in read — the
  // client waiting for the reply, the handler for the next request).
  RecordPtr handle_submit(int fd, const SubmitMsg& msg, bool& keep);
  RecordPtr handle_attach(int fd, const std::string& job_id, bool& keep);
  /// Stream progress frames until the job completes, then the result.
  /// Returns false when the client disconnected mid-stream.
  bool stream_job(int fd, const RecordPtr& rec);
  void run_job(const RecordPtr& rec);
  void finish_job(const RecordPtr& rec, JobOutcome outcome);
  void set_stage(const RecordPtr& rec, const char* stage);
  void join_finished_connections_locked();
  void update_queue_gauges_locked();

  core::Engine& engine_;
  ServeOptions opts_;

  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> stop_accept_{false};
  std::atomic<bool> stop_conns_{false};
  std::atomic<bool> hold_workers_{false};

  mutable std::mutex mu_;  // registry + queue + job records + conn table
  std::condition_variable cv_;  // broadcast on any job/queue/stop change
  std::map<std::string, RecordPtr> jobs_;
  std::deque<RecordPtr> queue_;
  std::map<std::string, int> queued_by_class_;
  std::deque<std::string> done_order_;  // Done-record eviction (kDoneCap)
  int active_ = 0;
  /// EWMA of recent job seconds; scales the shed retry_after_ms hint.
  double avg_job_seconds_ = 0.5;

  std::vector<std::thread> workers_;
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::atomic<bool> stop_watchdog_{false};
  std::atomic<int> test_wedge_ms_{0};
  std::map<u64, std::thread> conn_threads_;
  std::map<u64, int> conn_fds_;
  std::vector<u64> finished_conns_;
  u64 next_conn_id_ = 0;

  std::unique_ptr<Journal> journal_;  // null when store_dir is empty
  ReplaySummary replay_summary_;
  u64 quarantined_count_ = 0;         // guarded by mu_
  u64 watchdog_kills_ = 0;            // guarded by mu_
};

}  // namespace gp::serve
