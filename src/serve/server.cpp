#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "codegen/codegen.hpp"
#include "core/campaign.hpp"
#include "corpus/corpus.hpp"
#include "minic/minic.hpp"
#include "payload/serialize.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/signal.hpp"
#include "support/str.hpp"
#include "support/trace.hpp"

namespace gp::serve {

using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Done records kept for late re-attach before eviction. The artifact store
/// makes an evicted job cheap to recompute (a resubmit resumes warm), so
/// this only bounds registry memory, not correctness.
constexpr size_t kDoneCap = 4096;

std::vector<payload::Goal> resolve_goals(const std::string& name) {
  if (name == "all") return payload::Goal::all();
  for (const auto& g : payload::Goal::all())
    if (g.name == name) return {g};
  return {};
}

int close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
  return -1;
}

}  // namespace

ServeOptions ServeOptions::from_env() {
  const Config cfg = Config::from_env();
  ServeOptions o;
  o.socket_path = cfg.serve_sock;
  o.queue_limit = cfg.serve_queue;
  o.max_active = cfg.serve_max_active;
  o.store_dir = cfg.store_dir;
  o.poison_retries = cfg.serve_poison_retries;
  o.watchdog_ms = cfg.serve_watchdog_ms;
  return o;
}

Server::Server(core::Engine& engine, ServeOptions opts)
    : engine_(engine), opts_(std::move(opts)) {
  opts_.queue_limit = std::max(1, opts_.queue_limit);
  opts_.max_active = std::max(1, opts_.max_active);
  if (opts_.per_class_limit <= 0 || opts_.per_class_limit > opts_.queue_limit)
    opts_.per_class_limit = opts_.queue_limit;
  opts_.poison_retries = std::max(1, opts_.poison_retries);
  opts_.watchdog_ms = std::max(0, opts_.watchdog_ms);
}

Server::~Server() { stop(/*drain=*/false); }

Status Server::start() {
  if (started_.load()) return Status::internal("server already started");
  if (opts_.socket_path.empty())
    return Status::internal("no socket path (set GP_SERVE_SOCK or --sock)");

  sig::ignore_sigpipe();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path)
    return Status::internal("socket path too long: " + opts_.socket_path);
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  // A socket file left behind by a SIGKILLed predecessor would make bind()
  // fail forever. Probe it first: if a live daemon answers the connect we
  // refuse to usurp it; a dead file is unlinked and replaced.
  int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool live = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                sizeof addr) == 0;
    close_quiet(probe);
    if (live)
      return Status::internal("socket " + opts_.socket_path +
                              " already served by a live daemon");
    ::unlink(opts_.socket_path.c_str());
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Status::internal(std::string("socket: ") + std::strerror(errno));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int e = errno;
    listen_fd_ = close_quiet(listen_fd_);
    return Status::internal(std::string("bind ") + opts_.socket_path + ": " +
                            std::strerror(e));
  }
  if (::listen(listen_fd_, 128) < 0) {
    const int e = errno;
    listen_fd_ = close_quiet(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
    return Status::internal(std::string("listen: ") + std::strerror(e));
  }

  // Recover before the first thread exists: replay the journal into the
  // registry and queue, so workers see the re-enqueued backlog the moment
  // they start and no client races a half-replayed state.
  replay_summary_ = ReplaySummary{};
  if (!opts_.store_dir.empty()) {
    journal_ = std::make_unique<Journal>(opts_.store_dir + "/journal.gpj");
    if (Status st = journal_->open(); !st.ok()) {
      // The daemon never dies over its audit trail: serve non-durably and
      // let the metrics say why.
      metrics::registry().counter("serve.journal_open_failures").add();
      journal_.reset();
    } else {
      replay_summary_.journal_enabled = true;
      apply_replay(journal_->take_replay());
    }
  }

  started_.store(true);
  stopped_.store(false);
  draining_.store(false);
  stop_workers_.store(false);
  stop_conns_.store(false);
  stop_accept_.store(false);
  stop_watchdog_.store(false);
  for (int i = 0; i < opts_.max_active; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (opts_.watchdog_ms > 0)
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  return Status();
}

void Server::apply_replay(ReplayResult replay) {
  metrics::Registry& reg = metrics::registry();
  replay_summary_.clean_shutdown = replay.clean_shutdown;
  replay_summary_.rotated = replay.rotated;
  replay_summary_.records = replay.records;
  replay_summary_.torn_tail_bytes = replay.torn_tail_bytes;
  reg.counter("serve.journal_replayed").add(replay.records);

  std::lock_guard<std::mutex> lock(mu_);
  for (ReplayedJob& job : replay.jobs) {
    auto rec = std::make_shared<JobRecord>();
    rec->spec = std::move(job.spec);
    rec->id = job.job_id;
    rec->klass = job.klass.empty() ? "default" : job.klass;
    rec->dead_incarnations = job.dead_incarnations;
    rec->enqueued_at = Clock::now();

    const bool poisoned =
        job.quarantined ||
        (job.open && !replay.clean_shutdown &&
         job.dead_incarnations >= static_cast<u32>(opts_.poison_retries));
    if (poisoned) {
      // Every incarnation of this job has killed its worker. Stop feeding
      // it workers: pin a terminal `poisoned` answer that dedupe and
      // attach will serve, and that compaction keeps across restarts.
      rec->state = JobRecord::State::Done;
      rec->stage = "done";
      rec->quarantined = true;
      rec->outcome.job_id = rec->id;
      rec->outcome.status_code = static_cast<u8>(StatusCode::Internal);
      rec->outcome.status_msg =
          "poisoned: " + std::to_string(job.dead_incarnations) +
          " incarnation(s) died in flight";
      jobs_[rec->id] = rec;  // never in done_order_: exempt from eviction
      quarantined_count_++;
      replay_summary_.quarantined++;
      reg.counter("serve.quarantined").add();
      continue;
    }
    if (!job.open) {
      // Finished before the crash. Cancelled outcomes are NOT re-installed
      // (a dedupe hit on one would answer `cancelled` forever); dropping
      // them means a resubmit re-runs warm from the artifact store.
      if (job.done_status == static_cast<u8>(StatusCode::Cancelled)) continue;
      rec->state = JobRecord::State::Done;
      rec->stage = "done";
      rec->outcome.job_id = rec->id;
      rec->outcome.status_code = job.done_status;
      rec->outcome.status_msg =
          job.done_status == static_cast<u8>(StatusCode::Ok) ? ""
                                                             : "replayed";
      rec->outcome.digest = job.done_digest;
      rec->outcome.warm = true;
      jobs_[rec->id] = rec;
      done_order_.push_back(rec->id);
      replay_summary_.completed++;
      continue;
    }
    // Incomplete: the crashed daemon owes this answer. Re-enqueue it
    // ourselves — the client only ever needs to attach, never resubmit.
    jobs_[rec->id] = rec;
    queue_.push_back(rec);
    queued_by_class_[rec->klass]++;
    replay_summary_.requeued++;
    reg.counter("serve.journal_requeued").add();
  }
  update_queue_gauges_locked();

  // Rebaseline: the compacted log carries each live job's dead-incarnation
  // count in its Admit record and drops everything already answered
  // (except quarantined pins), so journal growth is bounded by backlog,
  // not history.
  if (journal_) (void)journal_->compact(live_jobs_locked(), /*clean=*/false);
}

std::vector<LiveJob> Server::live_jobs_locked() const {
  std::vector<LiveJob> live;
  for (const auto& [id, rec] : jobs_) {
    if (rec->quarantined) {
      LiveJob l;
      l.spec = rec->spec;
      l.job_id = rec->id;
      l.klass = rec->klass;
      l.dead_incarnations = rec->dead_incarnations;
      l.quarantined = true;
      live.push_back(std::move(l));
    } else if (rec->state != JobRecord::State::Done) {
      LiveJob l;
      l.spec = rec->spec;
      l.job_id = rec->id;
      l.klass = rec->klass;
      l.dead_incarnations = rec->dead_incarnations;
      l.started = rec->state == JobRecord::State::Active;
      live.push_back(std::move(l));
    }
  }
  return live;
}

void Server::maybe_compact_locked() {
  if (!journal_ || journal_->size_bytes() < opts_.journal_compact_bytes)
    return;
  (void)journal_->compact(live_jobs_locked(), /*clean=*/false);
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void Server::wait_drained() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void Server::hold_workers(bool hold) {
  hold_workers_.store(hold, std::memory_order_release);
  cv_.notify_all();
}

void Server::stop(bool drain) {
  if (!started_.load() || stopped_.exchange(true)) return;

  request_drain();
  std::vector<LiveJob> leftover;  // jobs the final journal must keep open
  if (drain) {
    hold_workers_.store(false);
    wait_drained();
  } else {
    // Cancel whatever is running and fail whatever is queued; cancelled
    // sessions observe the token at their next poll point and return
    // degraded, so workers come home quickly.
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& [id, rec] : jobs_)
      if (rec->session) rec->session->governor().cancel();
    while (!queue_.empty()) {
      RecordPtr rec = queue_.front();
      queue_.pop_front();
      queued_by_class_[rec->klass]--;
      // The client that attached gets `cancelled` now, but the journal
      // keeps the job open: a restart on this store dir re-enqueues it.
      LiveJob l;
      l.spec = rec->spec;
      l.job_id = rec->id;
      l.klass = rec->klass;
      l.dead_incarnations = rec->dead_incarnations;
      leftover.push_back(std::move(l));
      rec->state = JobRecord::State::Done;
      rec->outcome.job_id = rec->id;
      rec->outcome.status_code = static_cast<u8>(StatusCode::Cancelled);
      rec->outcome.status_msg = "server stopped before the job ran";
      rec->gen++;
    }
    update_queue_gauges_locked();
    lock.unlock();
    cv_.notify_all();
    wait_drained();
  }

  stop_workers_.store(true);
  stop_watchdog_.store(true);
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  // Final compaction: quarantined pins always survive; a drain shutdown
  // adds the CleanShutdown marker (no open job is poison evidence); a
  // cancel shutdown keeps the just-cancelled backlog open for the next
  // incarnation to re-enqueue.
  if (journal_) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<LiveJob> live = live_jobs_locked();
    for (auto& l : leftover) live.push_back(std::move(l));
    (void)journal_->compact(live, /*clean=*/drain);
  }

  // Flag first, close after the join: the accept loop polls with a short
  // timeout, so it observes the flag without ever racing the fd teardown.
  stop_accept_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = close_quiet(listen_fd_);

  stop_conns_.store(true);
  cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::map<u64, std::thread> conns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns.swap(conn_threads_);
    }
    if (conns.empty()) break;
    for (auto& [id, t] : conns) t.join();
  }

  ::unlink(opts_.socket_path.c_str());
  started_.store(false);
}

// -- accept / connection side ------------------------------------------------

void Server::accept_loop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 200);
    if (stop_accept_.load()) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      join_finished_connections_locked();
    }
    if (n <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen fd closed by stop()
    }
    if (fault::should_fire(fault::Point::Accept)) {
      // The injected failure mode is "connection lost right after accept":
      // the client sees a peer close, the daemon sheds the connection and
      // keeps serving.
      metrics::registry().counter("serve.accept_faults").add();
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const u64 id = next_conn_id_++;
    conn_fds_[id] = fd;
    conn_threads_.emplace(id, std::thread([this, id, fd] {
                            handle_connection(id, fd);
                          }));
  }
}

void Server::join_finished_connections_locked() {
  for (const u64 id : finished_conns_) {
    auto it = conn_threads_.find(id);
    if (it != conn_threads_.end()) {
      it->second.join();
      conn_threads_.erase(it);
    }
  }
  finished_conns_.clear();
}

void Server::handle_connection(u64 conn_id, int fd) {
  metrics::registry().counter("serve.connections").add();
  for (;;) {
    auto frame = read_frame(fd);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::Cancelled)
        metrics::registry().counter("serve.read_errors").add();
      break;
    }
    serial::Reader r(frame.value());
    const auto type = read_header(r);
    if (!type) {
      (void)write_frame(fd, make_error("bad message header or version"));
      metrics::registry().counter("serve.bad_requests").add();
      break;
    }
    bool keep = true;
    switch (*type) {
      case MsgType::kPing:
        keep = write_frame(fd, make_simple(MsgType::kPong)).ok();
        break;
      case MsgType::kStats:
        keep = write_frame(fd, make_stats_reply(stats_json())).ok();
        break;
      case MsgType::kShutdown:
        shutdown_requested_.store(true, std::memory_order_release);
        request_drain();
        keep = write_frame(fd, make_simple(MsgType::kShutdownAck)).ok();
        break;
      case MsgType::kSubmit: {
        auto msg = parse_submit(r);
        if (!msg) {
          (void)write_frame(fd, make_error("malformed submit"));
          metrics::registry().counter("serve.bad_requests").add();
          keep = false;
          break;
        }
        RecordPtr rec = handle_submit(fd, *msg, keep);
        if (keep && rec && msg->stream) keep = stream_job(fd, rec);
        break;
      }
      case MsgType::kAttach: {
        auto id = parse_attach(r);
        if (!id) {
          (void)write_frame(fd, make_error("malformed attach"));
          metrics::registry().counter("serve.bad_requests").add();
          keep = false;
          break;
        }
        RecordPtr rec = handle_attach(fd, *id, keep);
        if (keep && rec) keep = stream_job(fd, rec);
        break;
      }
      default:
        (void)write_frame(fd, make_error("unexpected message type"));
        metrics::registry().counter("serve.bad_requests").add();
        keep = false;
        break;
    }
    if (!keep) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(conn_id);
  finished_conns_.push_back(conn_id);
}

Server::RecordPtr Server::handle_submit(int fd, const SubmitMsg& msg,
                                        bool& keep) {
  metrics::Registry& reg = metrics::registry();
  const std::string id = msg.spec.job_id();
  const std::string klass =
      msg.spec.klass.empty() ? "default" : msg.spec.klass;

  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = jobs_.find(id); it != jobs_.end()) {
    // Identical resubmit (retry, reconnect, or a second tenant asking the
    // same question): piggyback on the existing record. Never shed — the
    // work is already paid for.
    RecordPtr rec = it->second;
    const bool done = rec->state == JobRecord::State::Done;
    lock.unlock();
    reg.counter("serve.dedup_hits").add();
    // A resubmit of a quarantined job streams its pinned `poisoned`
    // outcome — it is never allowed back into the queue.
    if (rec->quarantined) reg.counter("serve.poisoned_answers").add();
    keep = write_frame(fd, make_accepted(id, done)).ok();
    return rec;
  }

  auto shed = [&](const std::string& reason) -> RecordPtr {
    const size_t depth = queue_.size();
    const double avg = avg_job_seconds_;
    // Audit-only (not fsynced): a shed leaves no obligation behind, but
    // the trail distinguishes "never admitted" from "lost" post-mortem.
    if (journal_) (void)journal_->append_shed(id, reason);
    lock.unlock();
    // Hint when a queue slot should plausibly free up: the current backlog
    // worked off at the recent per-job rate across all workers.
    const double eta_ms = (static_cast<double>(depth + 1) * avg * 1e3) /
                          static_cast<double>(opts_.max_active);
    const u32 retry_ms =
        static_cast<u32>(std::clamp(eta_ms, 50.0, 60'000.0));
    reg.counter("serve.shed").add();
    reg.counter("serve.shed." + reason).add();
    keep = write_frame(fd, make_shed(retry_ms, reason)).ok();
    return nullptr;
  };

  if (draining_.load(std::memory_order_acquire)) return shed("draining");
  if (static_cast<int>(queue_.size()) >= opts_.queue_limit)
    return shed("queue-full");
  if (queued_by_class_[klass] >= opts_.per_class_limit)
    return shed("class-full");

  auto rec = std::make_shared<JobRecord>();
  rec->spec = msg.spec;
  rec->id = id;
  rec->klass = klass;
  rec->enqueued_at = Clock::now();
  jobs_[id] = rec;
  queue_.push_back(rec);
  queued_by_class_[klass]++;
  update_queue_gauges_locked();
  // Write-ahead, inside the admission lock so per-job record order matches
  // the state machine (no worker can journal a Start before this Admit).
  // An append failure degrades this job to non-durable admission — the
  // daemon keeps serving and the failure is counted, never fatal.
  if (journal_ && !journal_->append_admit(msg.spec, id, klass).ok())
    reg.counter("serve.journal_append_failures").add();
  lock.unlock();
  cv_.notify_all();

  reg.counter("serve.admitted").add();
  keep = write_frame(fd, make_accepted(id, /*already_done=*/false)).ok();
  return rec;
}

Server::RecordPtr Server::handle_attach(int fd, const std::string& job_id,
                                        bool& keep) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    lock.unlock();
    metrics::registry().counter("serve.attach_misses").add();
    keep = write_frame(fd, make_error("unknown job " + job_id)).ok();
    return nullptr;
  }
  RecordPtr rec = it->second;
  const bool done = rec->state == JobRecord::State::Done;
  lock.unlock();
  metrics::registry().counter("serve.attaches").add();
  keep = write_frame(fd, make_accepted(job_id, done)).ok();
  if (!keep) return nullptr;
  return rec;
}

bool Server::stream_job(int fd, const RecordPtr& rec) {
  u64 seen_gen = 0;
  std::string last_stage_sent;
  for (;;) {
    JobRecord::State state;
    std::string stage;
    JobOutcome outcome;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return rec->gen > seen_gen || stop_conns_.load();
      });
      if (stop_conns_.load() && rec->state != JobRecord::State::Done)
        return false;
      seen_gen = rec->gen;
      state = rec->state;
      stage = rec->stage;
      if (state == JobRecord::State::Done) outcome = rec->outcome;
    }
    if (state == JobRecord::State::Done) {
      if (!write_frame(fd, make_result(outcome)).ok()) {
        metrics::registry().counter("serve.disconnects").add();
        return false;
      }
      metrics::registry().counter("serve.results_streamed").add();
      return true;
    }
    if (stage != last_stage_sent) {
      if (!write_frame(fd, make_progress(rec->id, stage)).ok()) {
        // Client went away mid-stream. The job is NOT cancelled — the
        // worker finishes it into the registry/store and a later kAttach
        // (or identical resubmit) picks the result up.
        metrics::registry().counter("serve.disconnects").add();
        return false;
      }
      last_stage_sent = stage;
    }
  }
}

// -- worker side -------------------------------------------------------------

void Server::worker_loop() {
  for (;;) {
    RecordPtr rec;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stop_workers_.load() ||
               (!queue_.empty() && !hold_workers_.load());
      });
      if (stop_workers_.load()) return;
      rec = queue_.front();
      queue_.pop_front();
      queued_by_class_[rec->klass]--;
      rec->state = JobRecord::State::Active;
      rec->stage = "starting";
      rec->gen++;
      active_++;
      // Durable BEFORE the work begins: if this process dies mid-job, the
      // unmatched Start is the next incarnation's poison evidence.
      if (journal_ && !journal_->append_start(rec->id).ok())
        metrics::registry().counter("serve.journal_append_failures").add();
      update_queue_gauges_locked();
      metrics::registry().gauge("serve.active").set(active_);
      metrics::registry()
          .histogram("serve.queue_wait_ms")
          .observe(static_cast<u64>(secs_since(rec->enqueued_at) * 1e3));
    }
    cv_.notify_all();
    run_job(rec);
  }
}

void Server::set_stage(const RecordPtr& rec, const char* stage) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec->stage = stage;
    rec->gen++;
  }
  cv_.notify_all();
}

void Server::run_job(const RecordPtr& rec) {
  // The quarantine drill's crash site: the Start record is already durable,
  // so this abort is exactly "worker died in flight" — the next incarnation
  // replays an unmatched Start and counts a dead incarnation.
  if (fault::should_fire(fault::Point::JobCrash)) std::abort();

  const auto t0 = Clock::now();
  const JobSpec& spec = rec->spec;
  JobOutcome out;
  out.job_id = rec->id;

  // Workers must survive anything a request can throw at them: unknown
  // corpus names, mini-C compile errors, bad obfuscation profiles, and the
  // analysis itself all land in the outcome's Status, never on the floor.
  try {
    trace::Span span("serve:" + rec->id, "job");

    const std::string& src = spec.source.empty()
                                 ? corpus::by_name(spec.program).source
                                 : spec.source;
    auto prog = minic::compile_source(src);
    obf::obfuscate(prog, core::profile_by_name(spec.obf, spec.seed));
    codegen::Options copts;
    copts.opt = codegen::opt_level_from_int(engine_.config().opt_level);
    image::Image img = codegen::compile(prog, copts);

    const std::vector<payload::Goal> goals = resolve_goals(spec.goal);
    if (goals.empty()) throw Error("unknown goal '" + spec.goal + "'");

    // Per-request budget: the server's configured governor, overridden by
    // any non-zero JobSpec field, then split across the worker slots so one
    // tenant's request cannot starve the others' shares.
    core::PipelineOptions popts;
    GovernorOptions g = engine_.config().governor;
    if (spec.deadline_ms > 0) g.deadline_seconds = spec.deadline_ms / 1e3;
    if (spec.solver_checks > 0) g.max_solver_checks = spec.solver_checks;
    if (spec.sym_steps > 0) g.max_sym_steps = spec.sym_steps;
    if (spec.expr_nodes > 0) g.max_expr_nodes = spec.expr_nodes;
    popts.governor = g.split_across(opts_.max_active);
    popts.supervise.max_retries = engine_.config().max_retries;
    popts.store_dir = opts_.store_dir;
    popts.on_stage = [this, &rec](const char* stage) {
      set_stage(rec, stage);
    };

    core::Session session(engine_, std::move(img), popts);
    span.set_session(session.id());
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec->session = &session;
      rec->deadline_seconds = g.deadline_seconds;
      rec->session_started_at = Clock::now();
      rec->watchdog_fired = false;
    }

    // Test wedge: spin past the deadline ignoring everything but the
    // governor's cancel flag — the watchdog's only lever on a genuinely
    // stuck analysis.
    if (const int wedge = test_wedge_ms_.load(std::memory_order_acquire);
        wedge > 0) {
      const auto until = Clock::now() + std::chrono::milliseconds(wedge);
      while (Clock::now() < until &&
             !session.governor().cancel_token().cancelled())
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Same digest scheme as Campaign: goal name + serialized chains, in
    // goal order — a served job and a gp_pipeline job over the same spec
    // must agree byte-for-byte (tier1.sh's kill/restart drill compares
    // them across daemon generations).
    serial::Writer digest;
    for (const auto& goal : goals) {
      auto chains = session.find_chains(goal);
      digest.put_str(goal.name);
      for (const auto& chain_rec : payload::encode_chains(chains))
        serial::put_record(digest, chain_rec);
      out.chains_per_goal.emplace_back(goal.name,
                                       static_cast<u32>(chains.size()));
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      rec->session = nullptr;
    }

    const core::StageReport& rep = session.report();
    const Status worst = rep.worst_status();
    out.status_code = static_cast<u8>(worst.code());
    out.status_msg = worst.message();
    out.digest = serial::fnv1a(digest.bytes());
    out.warm = (rep.extract_runs.cache_hits + rep.extract_runs.resumes +
                rep.subsume_runs.cache_hits + rep.subsume_runs.resumes +
                rep.plan_runs.cache_hits + rep.plan_runs.resumes) > 0;
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    rec->session = nullptr;
    out.status_code = static_cast<u8>(StatusCode::Internal);
    out.status_msg = e.what();
  }

  out.seconds = secs_since(t0);
  finish_job(rec, std::move(out));
}

void Server::finish_job(const RecordPtr& rec, JobOutcome outcome) {
  metrics::Registry& reg = metrics::registry();
  reg.counter("serve.done").add();
  if (outcome.status_code == static_cast<u8>(StatusCode::Internal))
    reg.counter("serve.failed").add();
  else if (outcome.status_code != static_cast<u8>(StatusCode::Ok))
    reg.counter("serve.degraded").add();
  if (outcome.warm) reg.counter("serve.warm_hits").add();
  reg.histogram("serve.job_ms")
      .observe(static_cast<u64>(outcome.seconds * 1e3));

  {
    std::lock_guard<std::mutex> lock(mu_);
    rec->outcome = std::move(outcome);
    rec->state = JobRecord::State::Done;
    rec->stage = "done";
    rec->gen++;
    active_--;
    reg.gauge("serve.active").set(active_);
    avg_job_seconds_ =
        0.7 * avg_job_seconds_ + 0.3 * rec->outcome.seconds;
    done_order_.push_back(rec->id);
    while (done_order_.size() > kDoneCap) {
      auto it = jobs_.find(done_order_.front());
      done_order_.pop_front();
      if (it != jobs_.end() && it->second->state == JobRecord::State::Done)
        jobs_.erase(it);
    }
    // Terminal record inside the lock, so a compaction snapshot can never
    // list this job live while its Done lands in a pre-rename file.
    if (journal_ && !journal_->append_done(rec->id,
                                           rec->outcome.status_code,
                                           rec->outcome.digest).ok())
      reg.counter("serve.journal_append_failures").add();
    update_queue_gauges_locked();
    maybe_compact_locked();
  }
  cv_.notify_all();
}

void Server::watchdog_loop() {
  // Scan period: fine-grained enough for test-sized grace values, cheap
  // enough to be invisible at the 10s default.
  const auto period =
      std::chrono::milliseconds(std::clamp(opts_.watchdog_ms / 4, 10, 200));
  while (!stop_watchdog_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    const double grace = opts_.watchdog_ms / 1e3;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, rec] : jobs_) {
      if (rec->state != JobRecord::State::Active || !rec->session ||
          rec->watchdog_fired || rec->deadline_seconds <= 0)
        continue;
      if (secs_since(rec->session_started_at) <
          rec->deadline_seconds + grace)
        continue;
      // The session blew through its own deadline without coming home:
      // it is stuck somewhere that does not poll. Cancellation is the
      // strongest safe lever — every loop head in the pipeline checks it,
      // so the worker comes back with a degraded (cancelled) outcome
      // instead of being wedged forever.
      rec->session->governor().cancel();
      rec->watchdog_fired = true;
      watchdog_kills_++;
      metrics::registry().counter("serve.watchdog_kills").add();
    }
  }
}

void Server::update_queue_gauges_locked() {
  metrics::registry()
      .gauge("serve.queue_depth")
      .set(static_cast<i64>(queue_.size()));
  // Open (not yet answered) journal obligations: queued + running jobs.
  metrics::registry()
      .gauge("serve.journal_depth")
      .set(static_cast<i64>(queue_.size()) + active_);
}

std::string Server::stats_json() const {
  size_t depth, njobs;
  int active;
  u64 quarantined, watchdog_kills;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
    njobs = jobs_.size();
    active = active_;
    quarantined = quarantined_count_;
    watchdog_kills = watchdog_kills_;
  }
  const u64 journal_bytes = journal_ ? journal_->size_bytes() : 0;
  std::string j = "{\"serve\": {";
  j += "\"queue_depth\": " + std::to_string(depth);
  j += ", \"active\": " + std::to_string(active);
  j += ", \"jobs\": " + std::to_string(njobs);
  j += ", \"queue_limit\": " + std::to_string(opts_.queue_limit);
  j += ", \"max_active\": " + std::to_string(opts_.max_active);
  j += std::string(", \"draining\": ") + (draining() ? "true" : "false");
  j += ", \"journal_depth\": " + std::to_string(depth + active);
  j += ", \"journal_bytes\": " + std::to_string(journal_bytes);
  j += ", \"quarantined\": " + std::to_string(quarantined);
  j += ", \"watchdog_kills\": " + std::to_string(watchdog_kills);
  j += "}, \"metrics\": " + metrics::registry().to_json() + "}";
  return j;
}

}  // namespace gp::serve
