#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/str.hpp"

namespace gp::serve {

namespace {

/// hex16 without the 0x prefix (filename-safe job ids).
std::string hex16(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void put_type(serial::Writer& w, MsgType t) {
  w.put_u8(static_cast<u8>(t));
  w.put_u32(kProtocolVersion);
}

}  // namespace

std::string JobSpec::job_id() const {
  serial::Writer w;
  // Only result-determining fields: two submits that would produce the same
  // chains must collide so the registry and the artifact store deduplicate
  // them. klass steers admission and stream is transport — excluded.
  w.put_str(program);
  w.put_str(source);
  w.put_str(obf);
  w.put_str(goal);
  w.put_u64(seed);
  w.put_f64(deadline_ms);
  w.put_u64(solver_checks);
  w.put_u64(sym_steps);
  w.put_u64(expr_nodes);
  return "job-" + hex16(serial::fnv1a(w.bytes()));
}

void JobSpec::encode(serial::Writer& w) const {
  w.put_str(program);
  w.put_str(source);
  w.put_str(obf);
  w.put_str(goal);
  w.put_str(klass);
  w.put_u64(seed);
  w.put_f64(deadline_ms);
  w.put_u64(solver_checks);
  w.put_u64(sym_steps);
  w.put_u64(expr_nodes);
}

std::optional<JobSpec> JobSpec::decode(serial::Reader& r) {
  JobSpec s;
  s.program = r.get_str();
  s.source = r.get_str();
  s.obf = r.get_str();
  s.goal = r.get_str();
  s.klass = r.get_str();
  s.seed = r.get_u64();
  s.deadline_ms = r.get_f64();
  s.solver_checks = r.get_u64();
  s.sym_steps = r.get_u64();
  s.expr_nodes = r.get_u64();
  if (!r.ok()) return std::nullopt;
  return s;
}

void JobOutcome::encode(serial::Writer& w) const {
  w.put_str(job_id);
  w.put_u8(status_code);
  w.put_str(status_msg);
  w.put_u64(digest);
  w.put_f64(seconds);
  w.put_bool(warm);
  w.put_u32(static_cast<u32>(chains_per_goal.size()));
  for (const auto& [name, count] : chains_per_goal) {
    w.put_str(name);
    w.put_u32(count);
  }
}

std::optional<JobOutcome> JobOutcome::decode(serial::Reader& r) {
  JobOutcome o;
  o.job_id = r.get_str();
  o.status_code = r.get_u8();
  o.status_msg = r.get_str();
  o.digest = r.get_u64();
  o.seconds = r.get_f64();
  o.warm = r.get_bool();
  const u32 n = r.get_u32();
  if (!r.ok() || n > 1024) return std::nullopt;
  for (u32 i = 0; i < n; ++i) {
    std::string name = r.get_str();
    const u32 count = r.get_u32();
    o.chains_per_goal.emplace_back(std::move(name), count);
  }
  if (!r.ok()) return std::nullopt;
  return o;
}

std::vector<u8> make_submit(const JobSpec& spec, bool stream) {
  serial::Writer w;
  put_type(w, MsgType::kSubmit);
  w.put_bool(stream);
  spec.encode(w);
  return w.take();
}

std::optional<SubmitMsg> parse_submit(serial::Reader& r) {
  SubmitMsg m;
  m.stream = r.get_bool();
  auto spec = JobSpec::decode(r);
  if (!spec) return std::nullopt;
  m.spec = std::move(*spec);
  return m;
}

std::vector<u8> make_attach(const std::string& job_id) {
  serial::Writer w;
  put_type(w, MsgType::kAttach);
  w.put_str(job_id);
  return w.take();
}

std::optional<std::string> parse_attach(serial::Reader& r) {
  std::string id = r.get_str();
  if (!r.ok()) return std::nullopt;
  return id;
}

std::vector<u8> make_simple(MsgType t) {
  serial::Writer w;
  put_type(w, t);
  return w.take();
}

std::vector<u8> make_accepted(const std::string& job_id, bool already_done) {
  serial::Writer w;
  put_type(w, MsgType::kAccepted);
  w.put_str(job_id);
  w.put_bool(already_done);
  return w.take();
}

std::optional<AcceptedMsg> parse_accepted(serial::Reader& r) {
  AcceptedMsg m;
  m.job_id = r.get_str();
  m.already_done = r.get_bool();
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<u8> make_shed(u32 retry_after_ms, const std::string& reason) {
  serial::Writer w;
  put_type(w, MsgType::kShed);
  w.put_u32(retry_after_ms);
  w.put_str(reason);
  return w.take();
}

std::optional<ShedMsg> parse_shed(serial::Reader& r) {
  ShedMsg m;
  m.retry_after_ms = r.get_u32();
  m.reason = r.get_str();
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<u8> make_progress(const std::string& job_id,
                              const std::string& stage) {
  serial::Writer w;
  put_type(w, MsgType::kProgress);
  w.put_str(job_id);
  w.put_str(stage);
  return w.take();
}

std::optional<ProgressMsg> parse_progress(serial::Reader& r) {
  ProgressMsg m;
  m.job_id = r.get_str();
  m.stage = r.get_str();
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<u8> make_result(const JobOutcome& outcome) {
  serial::Writer w;
  put_type(w, MsgType::kResult);
  outcome.encode(w);
  return w.take();
}

std::optional<JobOutcome> parse_result(serial::Reader& r) {
  return JobOutcome::decode(r);
}

std::vector<u8> make_stats_reply(const std::string& json) {
  serial::Writer w;
  put_type(w, MsgType::kStatsReply);
  w.put_str(json);
  return w.take();
}

std::optional<std::string> parse_stats_reply(serial::Reader& r) {
  std::string json = r.get_str();
  if (!r.ok()) return std::nullopt;
  return json;
}

std::vector<u8> make_error(const std::string& message) {
  serial::Writer w;
  put_type(w, MsgType::kError);
  w.put_str(message);
  return w.take();
}

std::optional<std::string> parse_error(serial::Reader& r) {
  std::string msg = r.get_str();
  if (!r.ok()) return std::nullopt;
  return msg;
}

std::optional<MsgType> peek_type(std::span<const u8> payload) {
  if (payload.empty()) return std::nullopt;
  return static_cast<MsgType>(payload[0]);
}

std::optional<MsgType> read_header(serial::Reader& r) {
  const u8 type = r.get_u8();
  const u32 version = r.get_u32();
  if (!r.ok() || version != kProtocolVersion) return std::nullopt;
  return static_cast<MsgType>(type);
}

// -- socket framing ----------------------------------------------------------

namespace {

Status send_all(int fd, const u8* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::internal(std::string("socket write: ") +
                            std::strerror(n < 0 ? errno : EPIPE));
  }
  return Status();
}

/// Read exactly len bytes. `eof_ok` distinguishes a clean close at a frame
/// boundary (Cancelled, "peer closed") from truncation mid-frame
/// (Internal).
Status recv_all(int fd, u8* data, size_t len, bool eof_ok) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0 && off == 0 && eof_ok)
      return Status::cancelled("peer closed");
    return Status::internal(n == 0 ? "socket read: truncated frame"
                                   : std::string("socket read: ") +
                                         std::strerror(errno));
  }
  return Status();
}

}  // namespace

Status write_frame(int fd, std::span<const u8> payload) {
  if (fault::should_fire(fault::Point::SockWrite)) {
    static metrics::Counter& faults =
        metrics::registry().counter("serve.sock_write_faults");
    faults.add();
    return Status::fault_injected("injected sock_write fault");
  }
  serial::Writer w;
  w.put_u32(static_cast<u32>(payload.size()));
  w.put_u32(serial::crc32(payload));
  w.put_raw(payload);
  return send_all(fd, w.bytes().data(), w.size());
}

Result<std::vector<u8>> read_frame(int fd, u32 max_len) {
  if (fault::should_fire(fault::Point::SockRead)) {
    static metrics::Counter& faults =
        metrics::registry().counter("serve.sock_read_faults");
    faults.add();
    return Status::fault_injected("injected sock_read fault");
  }
  u8 header[8];
  if (Status st = recv_all(fd, header, sizeof header, /*eof_ok=*/true);
      !st.ok())
    return st;
  serial::Reader hr({header, sizeof header});
  const u32 len = hr.get_u32();
  const u32 crc = hr.get_u32();
  if (len > max_len)
    return Status::internal("frame length " + std::to_string(len) +
                            " exceeds limit " + std::to_string(max_len));
  std::vector<u8> payload(len);
  if (Status st = recv_all(fd, payload.data(), len, /*eof_ok=*/false);
      !st.ok())
    return st;
  if (serial::crc32(payload) != crc)
    return Status::internal("frame CRC mismatch");
  return payload;
}

}  // namespace gp::serve
