// Concrete user-mode emulator over the micro-IR.
//
// Plays two roles in the reproduction:
//  - runs compiled (and obfuscated) corpus programs end-to-end, which is how
//    the semantic-preservation property tests validate the obfuscator;
//  - validates planner payloads: place the payload on the simulated stack,
//    run, and confirm the goal syscall is reached with the planned register
//    state (the paper's "spawns a shell" check, minus the shell).
//
// ABI of the simulated OS (documented in DESIGN.md):
//   syscall 1  (write): append memory[rsi..rsi+rdx) to captured output,
//                       continue;
//   syscall 60 (exit):  stop, exit status = rdi;
//   any other syscall (incl. execve=59, mprotect=10, mmap=9): stop and
//   report — these are the code-reuse attack goals.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/image.hpp"
#include "ir/ir.hpp"
#include "x86/inst.hpp"

namespace gp::emu {

/// Sparse byte-addressed memory; untouched bytes read as zero.
class Memory {
 public:
  u8 read8(u64 addr) const {
    auto it = pages_.find(addr >> kPageShift);
    if (it == pages_.end()) return 0;
    return it->second[addr & kPageMask];
  }
  void write8(u64 addr, u8 v) { page(addr)[addr & kPageMask] = v; }

  u64 read(u64 addr, unsigned bytes) const {
    u64 v = 0;
    for (unsigned i = 0; i < bytes; ++i)
      v |= static_cast<u64>(read8(addr + i)) << (8 * i);
    return v;
  }
  void write(u64 addr, u64 v, unsigned bytes) {
    for (unsigned i = 0; i < bytes; ++i)
      write8(addr + i, static_cast<u8>(v >> (8 * i)));
  }
  void write_bytes(u64 addr, std::span<const u8> bytes) {
    for (size_t i = 0; i < bytes.size(); ++i) write8(addr + i, bytes[i]);
  }
  std::vector<u8> read_bytes(u64 addr, size_t n) const {
    std::vector<u8> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = read8(addr + i);
    return out;
  }

 private:
  static constexpr unsigned kPageShift = 12;
  static constexpr u64 kPageMask = 0xfff;
  std::array<u8, 4096>& page(u64 addr) {
    return pages_[addr >> kPageShift];
  }
  std::unordered_map<u64, std::array<u8, 4096>> pages_;
};

enum class StopReason : u8 {
  Running,
  Exit,        // syscall 60
  Syscall,     // any non-ABI syscall (attack goal)
  BadFetch,    // rip left the code section (and isn't kExitAddress)
  BadDecode,   // bytes at rip are not a supported instruction
  Int3,
  MaxSteps,
};
const char* stop_reason_name(StopReason r);

struct RunResult {
  StopReason reason = StopReason::Running;
  u64 steps = 0;
  u64 rip = 0;          // where execution stopped
  u64 syscall_no = 0;   // reason == Syscall/Exit: rax at the stop
  u64 exit_status = 0;  // reason == Exit
};

class Emulator {
 public:
  explicit Emulator(const image::Image& img);

  /// Reset registers/stack and load the image afresh.
  void reset();

  u64 reg(x86::Reg r) const { return regs_[static_cast<int>(r)]; }
  void set_reg(x86::Reg r, u64 v) { regs_[static_cast<int>(r)] = v; }
  bool flag(ir::Flag f) const { return flags_[static_cast<int>(f)]; }
  void set_flag(ir::Flag f, bool v) { flags_[static_cast<int>(f)] = v; }
  u64 rip() const { return rip_; }
  void set_rip(u64 v) { rip_ = v; }

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }

  /// Captured bytes from syscall 1 (write).
  const std::vector<u8>& output() const { return output_; }
  std::string output_str() const {
    return std::string(output_.begin(), output_.end());
  }

  /// Execute a single instruction. Returns Running to continue.
  StopReason step();

  /// Run from the current rip until a stop condition.
  RunResult run(u64 max_steps = 10'000'000);

 private:
  const image::Image& img_;
  Memory mem_;
  std::array<u64, x86::kNumRegs> regs_{};
  std::array<bool, ir::kNumFlags> flags_{};
  u64 rip_ = 0;
  std::vector<u8> output_;
  u64 last_syscall_ = 0;
  // Decode+lift cache keyed by address (code is not self-modifying in-run).
  std::unordered_map<u64, ir::Lifted> lift_cache_;
};

}  // namespace gp::emu
