#include "emu/emu.hpp"

#include "lift/lift.hpp"
#include "support/fault.hpp"
#include "x86/decoder.hpp"

namespace gp::emu {

using ir::EffectKind;
using ir::IrOp;
using ir::JumpKind;
using ir::Lifted;

const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::Running: return "running";
    case StopReason::Exit: return "exit";
    case StopReason::Syscall: return "syscall";
    case StopReason::BadFetch: return "bad-fetch";
    case StopReason::BadDecode: return "bad-decode";
    case StopReason::Int3: return "int3";
    case StopReason::MaxSteps: return "max-steps";
  }
  return "<bad>";
}

Emulator::Emulator(const image::Image& img) : img_(img) { reset(); }

void Emulator::reset() {
  mem_ = Memory();
  regs_.fill(0);
  flags_.fill(false);
  output_.clear();
  mem_.write_bytes(img_.code_base(), img_.code());
  mem_.write_bytes(img_.data_base(), img_.data());
  // Entry convention: rsp points at a return address of kExitAddress, so a
  // plain `ret` from the entry function cleanly exits.
  const u64 rsp = image::kStackTop - 4096;
  mem_.write(rsp, image::kExitAddress, 8);
  set_reg(x86::Reg::RSP, rsp);
  rip_ = img_.entry();
}

StopReason Emulator::step() {
  if (rip_ == image::kExitAddress) return StopReason::Exit;
  if (!img_.in_code(rip_)) return StopReason::BadFetch;
  // Injected emulator trap (GP_FAULT emu=<rate>): the run stops as if it
  // hit an int3, which every consumer already treats as a failed run.
  if (fault::enabled() && fault::should_fire(fault::Point::Emu))
    return StopReason::Int3;

  auto cached = lift_cache_.find(rip_);
  if (cached == lift_cache_.end()) {
    auto inst = x86::decode(img_.code_at(rip_), rip_);
    if (!inst) return StopReason::BadDecode;
    if (inst->mnemonic == x86::Mnemonic::INT3) return StopReason::Int3;
    cached = lift_cache_.emplace(rip_, lift::lift(*inst)).first;
  }
  const Lifted& l = cached->second;

  // Evaluate the SSA computes.
  std::vector<u64> temps(l.num_temps, 0);
  for (const auto& c : l.compute) {
    u64 v = 0;
    const u8 w = c.width;
    auto mask_count = [&](u64 cnt) { return cnt & (w == 64 ? 63 : w - 1); };
    switch (c.op) {
      case IrOp::Const: v = c.imm; break;
      case IrOp::GetReg: v = reg(c.reg); break;
      case IrOp::GetFlag: v = flag(c.flag); break;
      case IrOp::Load: v = mem_.read(temps[c.a], w / 8); break;
      case IrOp::Add: v = temps[c.a] + temps[c.b]; break;
      case IrOp::Sub: v = temps[c.a] - temps[c.b]; break;
      case IrOp::Mul: v = temps[c.a] * temps[c.b]; break;
      case IrOp::And: v = temps[c.a] & temps[c.b]; break;
      case IrOp::Or: v = temps[c.a] | temps[c.b]; break;
      case IrOp::Xor: v = temps[c.a] ^ temps[c.b]; break;
      case IrOp::Shl: v = temps[c.a] << mask_count(temps[c.b]); break;
      case IrOp::LShr: v = temps[c.a] >> mask_count(temps[c.b]); break;
      case IrOp::AShr:
        v = static_cast<u64>(
            static_cast<i64>(sign_extend(temps[c.a], w)) >>
            mask_count(temps[c.b]));
        break;
      case IrOp::Not: v = ~temps[c.a]; break;
      case IrOp::Neg: v = ~temps[c.a] + 1; break;
      case IrOp::Eq: v = temps[c.a] == temps[c.b]; break;
      case IrOp::Ult: v = temps[c.a] < temps[c.b]; break;
      case IrOp::Slt: {
        // Signed compare at the *operand* width (c.width is 1); recover it
        // from the defining compute of operand a.
        const u8 aw = l.compute[c.a].width;
        const i64 x = static_cast<i64>(sign_extend(temps[c.a], aw));
        const i64 y = static_cast<i64>(sign_extend(temps[c.b], aw));
        v = x < y;
        break;
      }
      case IrOp::Ite: v = temps[c.a] ? temps[c.b] : temps[c.c]; break;
      case IrOp::ZExt: v = temps[c.a]; break;
      case IrOp::SExt:
        v = sign_extend(temps[c.a], l.compute[c.a].width);
        break;
      case IrOp::Trunc: v = temps[c.a]; break;
    }
    temps[c.dst] = truncate(v, w);
  }

  // Apply effects in order.
  for (const auto& e : l.effects) {
    switch (e.kind) {
      case EffectKind::PutReg: set_reg(e.reg, temps[e.value]); break;
      case EffectKind::PutFlag: set_flag(e.flag, temps[e.value]); break;
      case EffectKind::Store:
        mem_.write(temps[e.addr], temps[e.value], e.width / 8);
        break;
    }
  }

  // Control flow.
  switch (l.jump.kind) {
    case JumpKind::Fall:
      rip_ = l.jump.fallthrough;
      break;
    case JumpKind::Direct:
      rip_ = l.jump.target;
      break;
    case JumpKind::Indirect:
      rip_ = temps[l.jump.target_temp];
      break;
    case JumpKind::CondDirect:
      rip_ = temps[l.jump.cond] ? l.jump.target : l.jump.fallthrough;
      break;
    case JumpKind::Syscall: {
      last_syscall_ = reg(x86::Reg::RAX);
      rip_ = l.jump.fallthrough;
      if (last_syscall_ == 1) {  // write(fd, buf, len)
        const u64 buf = reg(x86::Reg::RSI);
        const u64 len = reg(x86::Reg::RDX);
        GP_CHECK(len <= 1 << 20, "unreasonable write length");
        for (u64 i = 0; i < len; ++i) output_.push_back(mem_.read8(buf + i));
        break;
      }
      if (last_syscall_ == 60) return StopReason::Exit;
      return StopReason::Syscall;
    }
  }
  return StopReason::Running;
}

RunResult Emulator::run(u64 max_steps) {
  RunResult r;
  for (u64 i = 0; i < max_steps; ++i) {
    const StopReason s = step();
    ++r.steps;
    if (s != StopReason::Running) {
      r.reason = s;
      r.rip = rip_;
      r.syscall_no = last_syscall_;
      if (s == StopReason::Exit) {
        r.exit_status = reg(x86::Reg::RDI);
        // A ret to kExitAddress exits with status rax by convention.
        if (rip_ == image::kExitAddress)
          r.exit_status = reg(x86::Reg::RAX);
      }
      return r;
    }
  }
  r.reason = StopReason::MaxSteps;
  r.rip = rip_;
  return r;
}

}  // namespace gp::emu
