// Flat binary image ("ELF-lite"): the executable artifact produced by the
// mini-C code generator and consumed by the gadget scanner, the baselines and
// the concrete emulator.
//
// Layout mirrors a small static ELF: one read-execute code section and one
// read-write data section at fixed virtual addresses, an entry point, and a
// symbol table for diagnostics.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "support/status.hpp"

namespace gp::image {

constexpr u64 kCodeBase = 0x400000;
constexpr u64 kDataBase = 0x600000;
/// Initial stack pointer used by the emulator (stack grows down from here).
constexpr u64 kStackTop = 0x7ffff000;
/// Sentinel return address: the emulator halts when control reaches it.
constexpr u64 kExitAddress = 0xdead0000;

struct Symbol {
  std::string name;
  u64 addr = 0;
};

class Image {
 public:
  Image() = default;
  Image(std::vector<u8> code, std::vector<u8> data, u64 entry)
      : code_(std::move(code)), data_(std::move(data)), entry_(entry) {}

  std::span<const u8> code() const { return code_; }
  std::span<const u8> data() const { return data_; }
  u64 code_base() const { return kCodeBase; }
  u64 data_base() const { return kDataBase; }
  u64 code_end() const { return kCodeBase + code_.size(); }
  u64 entry() const { return entry_; }
  void set_entry(u64 e) { entry_ = e; }

  bool in_code(u64 addr) const {
    return addr >= kCodeBase && addr < code_end();
  }

  /// Bytes of the code section starting at virtual address `addr`.
  std::span<const u8> code_at(u64 addr) const {
    GP_CHECK(in_code(addr), "code_at: address outside code section");
    return std::span<const u8>(code_).subspan(addr - kCodeBase);
  }

  void add_symbol(std::string name, u64 addr) {
    symbols_.push_back({std::move(name), addr});
  }
  const std::vector<Symbol>& symbols() const { return symbols_; }
  std::optional<u64> find_symbol(const std::string& name) const {
    for (const auto& s : symbols_)
      if (s.name == name) return s.addr;
    return std::nullopt;
  }
  /// Name of the closest symbol at or below `addr`, for diagnostics.
  std::string symbolize(u64 addr) const;

 private:
  std::vector<u8> code_;
  std::vector<u8> data_;
  u64 entry_ = kCodeBase;
  std::vector<Symbol> symbols_;
};

// -- flat-binary interchange format ("GPIM") ---------------------------------
// A small on-disk form of an Image: magic + version, entry point, a section
// table (kind, vaddr, file offset, size), a symbol table, the section
// payloads, and a whole-file CRC32 footer.
//
// The loader is hardened for untrusted input — it returns gp::Status
// instead of asserting, and rejects: truncated headers or payloads,
// oversized/overlapping section tables, sections whose file ranges escape
// the file or overlap each other, duplicate/missing code sections, vaddrs
// that contradict the fixed layout, entry points outside code, and
// unbounded symbol tables. Any CRC mismatch is reported as corruption.
// load() never throws and never reads out of bounds.

/// Serialize `img` to the GPIM byte format.
std::vector<u8> save(const Image& img);
/// Serialize and write atomically (temp file + rename).
Status save_file(const Image& img, const std::string& path);

/// Parse a GPIM byte image. Non-Ok status on any malformation.
Result<Image> load(std::span<const u8> bytes);
/// Read (via serial::read_file, so injected read faults apply) and parse.
Result<Image> load_file(const std::string& path);

}  // namespace gp::image
