#include "image/image.hpp"

#include "support/serial.hpp"
#include "support/str.hpp"

namespace gp::image {

std::string Image::symbolize(u64 addr) const {
  const Symbol* best = nullptr;
  for (const auto& s : symbols_) {
    if (s.addr <= addr && (!best || s.addr > best->addr)) best = &s;
  }
  if (!best) return hex(addr);
  const u64 off = addr - best->addr;
  return off == 0 ? best->name : best->name + "+" + hex(off);
}

namespace {

constexpr u32 kImageMagic = 0x4D495047;  // "GPIM"
constexpr u32 kImageVersion = 1;
constexpr u8 kSectionCode = 0;
constexpr u8 kSectionData = 1;
// Hard caps for untrusted input; far above anything the codegen emits but
// small enough that a corrupted count cannot drive a giant allocation.
constexpr u32 kMaxSections = 16;
constexpr u32 kMaxSymbols = 1u << 20;
constexpr u64 kMaxSymbolName = 4096;

struct SectionHeader {
  u8 kind;
  u64 vaddr;
  u64 offset;  // from the start of the file
  u64 size;
};

}  // namespace

std::vector<u8> save(const Image& img) {
  serial::Writer w;
  w.put_u32(kImageMagic);
  w.put_u32(kImageVersion);
  w.put_u64(img.entry());

  // Section table. Payload offsets are filled in after the symbol table is
  // sized, so serialize the tail first.
  serial::Writer tail;
  tail.put_u32(static_cast<u32>(img.symbols().size()));
  for (const auto& s : img.symbols()) {
    tail.put_str(s.name);
    tail.put_u64(s.addr);
  }

  const u32 n_sections = img.data().empty() ? 1 : 2;
  // Header so far + section entries (1 + 8*3 bytes each) + tail.
  const u64 payload_start =
      w.size() + 4 + static_cast<u64>(n_sections) * 25 + tail.size();
  w.put_u32(n_sections);
  w.put_u8(kSectionCode);
  w.put_u64(img.code_base());
  w.put_u64(payload_start);
  w.put_u64(img.code().size());
  if (n_sections == 2) {
    w.put_u8(kSectionData);
    w.put_u64(img.data_base());
    w.put_u64(payload_start + img.code().size());
    w.put_u64(img.data().size());
  }
  w.put_raw(tail.bytes());
  w.put_raw(img.code());
  w.put_raw(img.data());
  w.put_u32(serial::crc32(w.bytes()));
  return w.take();
}

Status save_file(const Image& img, const std::string& path) {
  const auto bytes = save(img);
  return serial::write_file_atomic(path, bytes);
}

Result<Image> load(std::span<const u8> bytes) {
  auto bad = [](const std::string& msg) -> Result<Image> {
    return Status::internal("image load: " + msg);
  };

  if (bytes.size() < 4) return bad("truncated (no CRC footer)");
  const std::span<const u8> body = bytes.first(bytes.size() - 4);
  serial::Reader footer(bytes.subspan(bytes.size() - 4));
  if (serial::crc32(body) != footer.get_u32())
    return bad("CRC mismatch (corrupted or truncated file)");

  serial::Reader r(body);
  if (r.get_u32() != kImageMagic) return bad("bad magic");
  const u32 version = r.get_u32();
  if (!r.ok()) return bad("truncated header");
  if (version != kImageVersion)
    return bad("unsupported version " + std::to_string(version));
  const u64 entry = r.get_u64();

  const u32 n_sections = r.get_u32();
  if (!r.ok()) return bad("truncated section count");
  if (n_sections == 0 || n_sections > kMaxSections)
    return bad("oversized section table (" + std::to_string(n_sections) +
               " sections)");

  std::vector<SectionHeader> sections;
  for (u32 i = 0; i < n_sections; ++i) {
    SectionHeader s;
    s.kind = r.get_u8();
    s.vaddr = r.get_u64();
    s.offset = r.get_u64();
    s.size = r.get_u64();
    if (!r.ok()) return bad("truncated section table");
    if (s.kind != kSectionCode && s.kind != kSectionData)
      return bad("unknown section kind " + std::to_string(s.kind));
    // Overflow-safe bounds check: offset and size are independently
    // bounded by the file size before their sum is formed.
    if (s.offset > body.size() || s.size > body.size() ||
        s.offset + s.size > body.size())
      return bad("section " + std::to_string(i) + " escapes the file");
    sections.push_back(s);
  }

  // Reject overlapping file ranges (quadratic over <= 16 sections).
  for (size_t i = 0; i < sections.size(); ++i)
    for (size_t j = i + 1; j < sections.size(); ++j) {
      const auto& a = sections[i];
      const auto& b = sections[j];
      const bool disjoint =
          a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
      if (!disjoint && a.size && b.size)
        return bad("sections " + std::to_string(i) + " and " +
                   std::to_string(j) + " overlap");
    }

  const u32 n_symbols = r.get_u32();
  if (!r.ok()) return bad("truncated symbol count");
  if (n_symbols > kMaxSymbols) return bad("oversized symbol table");
  std::vector<Symbol> symbols;
  symbols.reserve(n_symbols);
  for (u32 i = 0; i < n_symbols; ++i) {
    Symbol s;
    s.name = r.get_str();
    s.addr = r.get_u64();
    if (!r.ok()) return bad("truncated symbol table");
    if (s.name.empty() || s.name.size() > kMaxSymbolName)
      return bad("bad symbol name length");
    symbols.push_back(std::move(s));
  }

  std::vector<u8> code, data;
  bool have_code = false, have_data = false;
  for (const auto& s : sections) {
    auto payload = body.subspan(s.offset, s.size);
    if (s.kind == kSectionCode) {
      if (have_code) return bad("duplicate code section");
      if (s.vaddr != kCodeBase)
        return bad("code section vaddr contradicts layout");
      code.assign(payload.begin(), payload.end());
      have_code = true;
    } else {
      if (have_data) return bad("duplicate data section");
      if (s.vaddr != kDataBase)
        return bad("data section vaddr contradicts layout");
      data.assign(payload.begin(), payload.end());
      have_data = true;
    }
  }
  if (!have_code) return bad("missing code section");
  if (entry < kCodeBase || entry >= kCodeBase + code.size())
    return bad("entry point outside the code section");

  Image img(std::move(code), std::move(data), entry);
  for (auto& s : symbols) img.add_symbol(std::move(s.name), s.addr);
  return img;
}

Result<Image> load_file(const std::string& path) {
  auto bytes = serial::read_file(path);
  if (!bytes.ok()) return bytes.status();
  return load(bytes.value());
}

}  // namespace gp::image
