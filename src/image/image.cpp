#include "image/image.hpp"

#include "support/str.hpp"

namespace gp::image {

std::string Image::symbolize(u64 addr) const {
  const Symbol* best = nullptr;
  for (const auto& s : symbols_) {
    if (s.addr <= addr && (!best || s.addr > best->addr)) best = &s;
  }
  if (!best) return hex(addr);
  const u64 off = addr - best->addr;
  return off == 0 ? best->name : best->name + "+" + hex(off);
}

}  // namespace gp::image
